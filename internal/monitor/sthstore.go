package monitor

// Crash-safe persistence for the audited crawl's trust anchor. The
// checkpoint remembers *where* a crawl stopped; the STH store
// remembers *what it proved*: the last verified tree head (size +
// root) together with the compact-range right-edge hashes that let a
// restarted crawl keep appending to its mirror of the log's Merkle
// tree. A resume therefore re-anchors consistency auditing on a
// verified head — a log that equivocates across our restart is caught
// by the first get-sth of the new process. The record uses the same
// discipline as CheckpointStore: CRC-sealed, versioned, temp-write →
// fsync → rename → dir-fsync, and anything torn reads back as a clean
// "no record".

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"math/bits"
	"os"
	"path/filepath"
	"time"

	"repro/internal/ctlog"
)

// VerifiedSTH is the persisted trust anchor: a tree head whose every
// leaf the monitor fetched and verified, plus the compact-range
// hashes needed to extend the mirror past it.
type VerifiedSTH struct {
	// Size and Root identify the verified prefix [0, Size) of the log.
	Size int
	Root ctlog.Hash
	// Hashes is the compact-range right edge (one hash per set bit of
	// Size, largest subtree first), as produced by CompactTree.Hashes.
	Hashes []ctlog.Hash
	// UpdatedAt is when the anchor was taken.
	UpdatedAt time.Time
}

// STHStore persists the verified tree head across process restarts.
type STHStore interface {
	// Load returns the stored anchor. ok is false when no usable record
	// exists — including a torn or corrupted one, on purpose. The error
	// is reserved for I/O failures on an existing, readable path.
	Load() (v VerifiedSTH, ok bool, err error)
	// Save durably replaces the stored anchor.
	Save(v VerifiedSTH) error
}

// STH record wire format (little-endian, variable length):
//
//	offset size field
//	     0    4 magic "USTH"
//	     4    2 version (1)
//	     6    2 hash count k (= popcount of size)
//	     8    8 tree size (uint64)
//	    16    8 updated-at (int64, unix nanoseconds)
//	    24   32 root hash
//	    56 32×k compact-range hashes, largest subtree first
//	  56+32k  4 CRC-32 (IEEE) over all preceding bytes
const (
	sthMagic     = "USTH"
	sthVersion   = 1
	sthHeaderLen = 56
)

// MarshalBinary encodes the sealed record.
func (v VerifiedSTH) MarshalBinary() ([]byte, error) {
	if v.Size < 0 {
		return nil, fmt.Errorf("monitor: negative verified STH size %d", v.Size)
	}
	if len(v.Hashes) != bits.OnesCount64(uint64(v.Size)) {
		return nil, fmt.Errorf("monitor: verified STH carries %d hashes for size %d", len(v.Hashes), v.Size)
	}
	buf := make([]byte, sthHeaderLen+32*len(v.Hashes)+4)
	copy(buf[0:4], sthMagic)
	binary.LittleEndian.PutUint16(buf[4:6], sthVersion)
	binary.LittleEndian.PutUint16(buf[6:8], uint16(len(v.Hashes)))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(v.Size))
	var ns int64
	if !v.UpdatedAt.IsZero() {
		ns = v.UpdatedAt.UnixNano()
	}
	binary.LittleEndian.PutUint64(buf[16:24], uint64(ns))
	copy(buf[24:56], v.Root[:])
	for i, h := range v.Hashes {
		copy(buf[sthHeaderLen+32*i:], h[:])
	}
	n := len(buf) - 4
	binary.LittleEndian.PutUint32(buf[n:], crc32.ChecksumIEEE(buf[:n]))
	return buf, nil
}

// UnmarshalBinary decodes a sealed record. Any deviation — length,
// magic, version, CRC, hash count, or a root that does not fold from
// the hashes — is an error; FileSTHStore.Load maps that to "no
// record" so a damaged anchor costs a refetch, never a false trust
// root.
func (v *VerifiedSTH) UnmarshalBinary(buf []byte) error {
	if len(buf) < sthHeaderLen+4 {
		return fmt.Errorf("monitor: STH record is %d bytes, want at least %d", len(buf), sthHeaderLen+4)
	}
	if string(buf[0:4]) != sthMagic {
		return errors.New("monitor: bad STH record magic")
	}
	k := int(binary.LittleEndian.Uint16(buf[6:8]))
	if len(buf) != sthHeaderLen+32*k+4 {
		return fmt.Errorf("monitor: STH record is %d bytes, want %d for %d hashes", len(buf), sthHeaderLen+32*k+4, k)
	}
	n := len(buf) - 4
	if got := crc32.ChecksumIEEE(buf[:n]); got != binary.LittleEndian.Uint32(buf[n:]) {
		return errors.New("monitor: STH record CRC mismatch")
	}
	if ver := binary.LittleEndian.Uint16(buf[4:6]); ver != sthVersion {
		return fmt.Errorf("monitor: unknown STH record version %d", ver)
	}
	size := binary.LittleEndian.Uint64(buf[8:16])
	const maxInt = int(^uint(0) >> 1)
	if size > uint64(maxInt) {
		return errors.New("monitor: STH record size overflows int")
	}
	if bits.OnesCount64(size) != k {
		return fmt.Errorf("monitor: STH record hash count %d does not match size %d", k, size)
	}
	v.Size = int(size)
	if ns := int64(binary.LittleEndian.Uint64(buf[16:24])); ns != 0 {
		v.UpdatedAt = time.Unix(0, ns)
	} else {
		v.UpdatedAt = time.Time{}
	}
	copy(v.Root[:], buf[24:56])
	v.Hashes = make([]ctlog.Hash, k)
	for i := range v.Hashes {
		copy(v.Hashes[i][:], buf[sthHeaderLen+32*i:])
	}
	// The root must fold from the hashes — a record whose fields
	// disagree internally is as untrustworthy as a torn one.
	t, err := ctlog.NewCompactTree(v.Size, v.Hashes)
	if err != nil {
		return err
	}
	if t.Root() != v.Root {
		return errors.New("monitor: STH record root does not fold from its hashes")
	}
	return nil
}

// FileSTHStore keeps the verified tree head in one file at Path.
type FileSTHStore struct {
	Path string
}

// Load implements STHStore. A missing file, or any record failing
// validation, is a clean "no anchor".
func (s *FileSTHStore) Load() (VerifiedSTH, bool, error) {
	buf, err := os.ReadFile(s.Path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return VerifiedSTH{}, false, nil
		}
		return VerifiedSTH{}, false, fmt.Errorf("monitor: reading STH store %s: %w", s.Path, err)
	}
	var v VerifiedSTH
	if err := v.UnmarshalBinary(buf); err != nil {
		// A damaged anchor never becomes a trust root.
		return VerifiedSTH{}, false, nil
	}
	return v, true, nil
}

// Save implements STHStore with the temp-write → fsync → rename →
// dir-fsync discipline, so any kill point leaves either the previous
// complete anchor or the new one.
func (s *FileSTHStore) Save(v VerifiedSTH) error {
	buf, err := v.MarshalBinary()
	if err != nil {
		return err
	}
	dir := filepath.Dir(s.Path)
	tmp, err := os.CreateTemp(dir, filepath.Base(s.Path)+".tmp*")
	if err != nil {
		return fmt.Errorf("monitor: creating STH temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("monitor: writing STH record: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("monitor: syncing STH record: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("monitor: closing STH temp: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.Path); err != nil {
		return fmt.Errorf("monitor: publishing STH record: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		// Best-effort dir fsync, as for checkpoints.
		d.Sync()
		d.Close()
	}
	return nil
}
