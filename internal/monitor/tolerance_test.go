package monitor

import (
	"testing"

	"repro/internal/x509cert"
)

func TestToleranceExperiment(t *testing.T) {
	sample := []*x509cert.Certificate{
		cert(t, "clean.example", "clean.example"),
		cert(t, "victim.example\x00attack", "victim.example\x00attack"),
		cert(t, "pad.example corp", "pad.example corp"),
		cert(t, "xn--www-hn0a.example", "xn--www-hn0a.example"),
	}
	rows := ToleranceExperiment(sample)
	if len(rows) != 5 {
		t.Fatalf("rows %d", len(rows))
	}
	byName := map[string]ToleranceRow{}
	for _, r := range rows {
		byName[r.Monitor] = r
	}
	// Fuzzy monitors find even the NUL- and space-crafted entries when
	// the owner queries the clean substring.
	crtsh := byName["Crt.sh"]
	if crtsh.Missed != 0 {
		t.Errorf("Crt.sh missed %d of %d", crtsh.Missed, crtsh.Sampled)
	}
	// SSLMate misses crafted entries (P1.4 indexing failures) and
	// refuses the deceptive IDN query (U-label check).
	sslmate := byName["SSLMate Spotter"]
	if sslmate.Missed == 0 {
		t.Error("SSLMate should miss special-Unicode certificates")
	}
	if sslmate.Refused == 0 {
		t.Error("SSLMate should refuse the deceptive IDN query")
	}
	// The discontinued monitor reports an empty row.
	if byName["Entrust Search"].Sampled != 0 {
		t.Error("Entrust row should be empty")
	}
	// Exact-match Facebook finds clean entries but not crafted ones.
	fb := byName["Facebook Monitor"]
	if fb.Found == 0 || fb.Missed == 0 {
		t.Errorf("Facebook: %+v", fb)
	}
}
