package monitor

// Crash-safe checkpoint persistence. A crawl's resume point (PR 1's
// in-memory checkpoint) survives process death by being written
// through a CheckpointStore after every ingested batch. The file
// implementation is torn-write-proof twice over: each record is
// CRC-sealed and versioned, and every save goes through the classic
// temp-write → fsync → rename → dir-fsync dance, so at any kill point
// the path holds either the previous complete record or the new
// complete record — never a blend. A reader that finds anything else
// (short file, bad magic, bad CRC, unknown version) reports a clean
// "no checkpoint", which merely costs a refetch, instead of resuming
// from a wrong index, which would silently lose log entries — the
// exact monitor blind spot the paper's §6.1 threat model exploits.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"time"
)

// Checkpoint is a crawl resume point.
type Checkpoint struct {
	// NextIndex is the next log index to fetch; every entry below it
	// has been handled (indexed, skipped, or rejected).
	NextIndex int
	// TreeSize is the tree size of the last STH the crawl saw.
	TreeSize int
	// UpdatedAt is when the checkpoint was taken.
	UpdatedAt time.Time
}

// CheckpointStore persists crawl progress across process restarts.
type CheckpointStore interface {
	// Load returns the stored checkpoint. ok is false when no usable
	// checkpoint exists — including a torn or corrupted record, which
	// is indistinguishable from "never saved" on purpose. The error is
	// reserved for I/O failures on an existing, readable path.
	Load() (cp Checkpoint, ok bool, err error)
	// Save durably replaces the stored checkpoint.
	Save(cp Checkpoint) error
}

// Checkpoint record wire format (fixed 36 bytes, little-endian):
//
//	offset size field
//	     0    4 magic "UCKP"
//	     4    2 version (1)
//	     6    2 reserved (0)
//	     8    8 next index (uint64)
//	    16    8 tree size (uint64)
//	    24    8 updated-at (int64, unix nanoseconds)
//	    32    4 CRC-32 (IEEE) over bytes [0,32)
const (
	checkpointMagic   = "UCKP"
	checkpointVersion = 1
	checkpointLen     = 36
)

// MarshalBinary encodes the fixed-size sealed record.
func (cp Checkpoint) MarshalBinary() ([]byte, error) {
	if cp.NextIndex < 0 || cp.TreeSize < 0 {
		return nil, fmt.Errorf("monitor: negative checkpoint fields (next=%d tree=%d)", cp.NextIndex, cp.TreeSize)
	}
	buf := make([]byte, checkpointLen)
	copy(buf[0:4], checkpointMagic)
	binary.LittleEndian.PutUint16(buf[4:6], checkpointVersion)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(cp.NextIndex))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(cp.TreeSize))
	var ns int64
	if !cp.UpdatedAt.IsZero() {
		ns = cp.UpdatedAt.UnixNano()
	}
	binary.LittleEndian.PutUint64(buf[24:32], uint64(ns))
	binary.LittleEndian.PutUint32(buf[32:36], crc32.ChecksumIEEE(buf[:32]))
	return buf, nil
}

// UnmarshalBinary decodes a sealed record. Any deviation — length,
// magic, version, CRC — is an error; callers decide whether that means
// "no checkpoint" (FileCheckpointStore.Load does).
func (cp *Checkpoint) UnmarshalBinary(buf []byte) error {
	if len(buf) != checkpointLen {
		return fmt.Errorf("monitor: checkpoint record is %d bytes, want %d", len(buf), checkpointLen)
	}
	if string(buf[0:4]) != checkpointMagic {
		return errors.New("monitor: bad checkpoint magic")
	}
	if got := crc32.ChecksumIEEE(buf[:32]); got != binary.LittleEndian.Uint32(buf[32:36]) {
		return errors.New("monitor: checkpoint CRC mismatch")
	}
	if v := binary.LittleEndian.Uint16(buf[4:6]); v != checkpointVersion {
		return fmt.Errorf("monitor: unknown checkpoint version %d", v)
	}
	next := binary.LittleEndian.Uint64(buf[8:16])
	tree := binary.LittleEndian.Uint64(buf[16:24])
	const maxInt = int(^uint(0) >> 1)
	if next > uint64(maxInt) || tree > uint64(maxInt) {
		return errors.New("monitor: checkpoint fields overflow int")
	}
	cp.NextIndex = int(next)
	cp.TreeSize = int(tree)
	if ns := int64(binary.LittleEndian.Uint64(buf[24:32])); ns != 0 {
		cp.UpdatedAt = time.Unix(0, ns)
	} else {
		cp.UpdatedAt = time.Time{}
	}
	return nil
}

// FileCheckpointStore keeps the checkpoint in one file at Path.
type FileCheckpointStore struct {
	Path string
}

// Load implements CheckpointStore. A missing file, or any record that
// fails validation (torn write, truncation, bit rot, foreign format),
// is a clean "no checkpoint".
func (s *FileCheckpointStore) Load() (Checkpoint, bool, error) {
	buf, err := os.ReadFile(s.Path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return Checkpoint{}, false, nil
		}
		return Checkpoint{}, false, fmt.Errorf("monitor: reading checkpoint %s: %w", s.Path, err)
	}
	var cp Checkpoint
	if err := cp.UnmarshalBinary(buf); err != nil {
		// Unreadable records never resume a crawl from a guessed index.
		return Checkpoint{}, false, nil
	}
	return cp, true, nil
}

// Save implements CheckpointStore with full write-ahead durability:
// the record lands in a temp file, is fsynced, then renamed over Path,
// and the directory is fsynced so the rename itself survives a crash.
func (s *FileCheckpointStore) Save(cp Checkpoint) error {
	buf, err := cp.MarshalBinary()
	if err != nil {
		return err
	}
	dir := filepath.Dir(s.Path)
	tmp, err := os.CreateTemp(dir, filepath.Base(s.Path)+".tmp*")
	if err != nil {
		return fmt.Errorf("monitor: creating checkpoint temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("monitor: writing checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("monitor: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("monitor: closing checkpoint temp: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.Path); err != nil {
		return fmt.Errorf("monitor: publishing checkpoint: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		// Dir fsync pins the rename; best-effort on filesystems that
		// reject directory syncs.
		d.Sync()
		d.Close()
	}
	return nil
}

// LockedFileCheckpointStore is a FileCheckpointStore whose path is
// guarded by an advisory lock, so two workers accidentally configured
// with the same checkpoint path fail fast at acquisition time instead
// of silently interleaving saves — each would persist its own crawl
// position over the other's and a restart would resume both from a
// blend of wrong indexes. Acquire with AcquireFileCheckpointStore and
// release with Close.
type LockedFileCheckpointStore struct {
	FileCheckpointStore
	lock *lockHandle
}

// AcquireFileCheckpointStore opens a file checkpoint store at path
// after taking an advisory lock on path+".lock". If another holder —
// in this process or any other — already owns the lock, it returns an
// error immediately (ErrCheckpointLocked wrapped with the path).
func AcquireFileCheckpointStore(path string) (*LockedFileCheckpointStore, error) {
	h, err := acquireLock(path + ".lock")
	if err != nil {
		return nil, err
	}
	return &LockedFileCheckpointStore{
		FileCheckpointStore: FileCheckpointStore{Path: path},
		lock:                h,
	}, nil
}

// Close releases the advisory lock. The checkpoint file itself is left
// in place — it is the durable artifact; only the exclusivity goes.
func (s *LockedFileCheckpointStore) Close() error {
	if s == nil || s.lock == nil {
		return nil
	}
	err := s.lock.release()
	s.lock = nil
	return err
}

// ErrCheckpointLocked reports that another store holds the checkpoint
// path's advisory lock.
var ErrCheckpointLocked = errors.New("monitor: checkpoint path locked by another holder")
