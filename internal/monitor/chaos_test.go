package monitor

// Chaos tests: the crawl path is exercised against the deterministic
// fault injector until the degraded-network conditions of the §6.1
// threat model — flaky frontends, torn connections, corrupted
// responses, poisoned entries, lagging tree heads — no longer cost
// the monitor any parseable certificate.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ctlog"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// chaosLog builds a log with total entries: a rotating set of
// distinct parseable leaves, with every precertGap-th entry flagged
// as a precertificate. It returns the log and the number of precerts.
func chaosLog(t *testing.T, seed int64, total, precertGap int) (*ctlog.Log, int) {
	t.Helper()
	log, err := ctlog.NewLog(seed)
	if err != nil {
		t.Fatal(err)
	}
	const distinct = 8
	ders := make([][]byte, distinct)
	for i := range ders {
		ders[i] = cert(t, fmt.Sprintf("chaos-%d.example", i), fmt.Sprintf("chaos-%d.example", i)).Raw
	}
	precerts := 0
	for i := 0; i < total; i++ {
		pre := precertGap > 0 && i%precertGap == precertGap-1
		if pre {
			precerts++
		}
		if _, err := log.AddParsed(ders[i%distinct], pre); err != nil {
			t.Fatal(err)
		}
	}
	return log, precerts
}

// countingHandler tracks get-entries hits around an inner handler.
type countingHandler struct {
	inner      http.Handler
	getEntries atomic.Int64
}

func (h *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasSuffix(r.URL.Path, "/get-entries") {
		h.getEntries.Add(1)
	}
	h.inner.ServeHTTP(w, r)
}

func fastChaosClient(base string, transport http.RoundTripper) *ctlog.Client {
	return &ctlog.Client{
		Base:       base,
		HTTP:       &http.Client{Transport: transport},
		MaxRetries: 4,
		Timeout:    5 * time.Second,
		Sleep:      func(context.Context, time.Duration) error { return nil },
	}
}

// TestChaosSyncIndexesEveryParseableCert is the acceptance scenario:
// a ≥500-entry log crawled through a ≥20% fault rate (5xx, drops,
// latency, truncation, corrupt JSON) plus persistently poisoned
// entries must still complete one crawl that indexes every parseable
// certificate, with SyncStats accounting exactly for the damage, and
// a second crawl must resume from the checkpoint without refetching.
func TestChaosSyncIndexesEveryParseableCert(t *testing.T) {
	const total = 520
	log, precerts := chaosLog(t, 41, total, 10)
	poisoned := map[int]bool{37: true, 251: true, 404: true, 518: true}

	counter := &countingHandler{inner: (&ctlog.Server{Log: log}).Handler()}
	srv := httptest.NewServer(counter)
	defer srv.Close()

	injector := faultinject.New(faultinject.Config{
		Seed: 99,
		Rate: 0.25,
		Kinds: []faultinject.Kind{
			faultinject.ServerError,
			faultinject.Drop,
			faultinject.Latency,
			faultinject.Truncate,
			faultinject.CorruptJSON,
		},
		Latency:       time.Millisecond,
		PoisonEntries: poisoned,
	}, nil)
	client := fastChaosClient(srv.URL, injector)
	ctx := context.Background()

	m := New(Monitors()[0]) // Crt.sh profile indexes everything parseable
	stats, err := m.SyncFromLog(ctx, client, SyncOptions{Batch: 32})
	if err != nil {
		t.Fatalf("crawl did not survive the chaos: %v\nstats %+v\ninjector %+v", err, stats, injector.Stats())
	}
	ist := injector.Stats()
	if ist.Total() == 0 || ist.Faults[faultinject.ServerError] == 0 || ist.Faults[faultinject.Drop] == 0 ||
		ist.Faults[faultinject.CorruptJSON] == 0 || ist.Faults[faultinject.Truncate] == 0 {
		t.Fatalf("chaos run was not chaotic enough: %+v", ist)
	}

	// The crawl completed: checkpoint at the head, nothing unexplained.
	if m.Checkpoint() != total {
		t.Fatalf("checkpoint %d, want %d", m.Checkpoint(), total)
	}
	if stats.SkippedEntries != len(poisoned) {
		t.Fatalf("skipped %d entries, want exactly the %d poisoned ones; stats %+v", stats.SkippedEntries, len(poisoned), stats)
	}
	if stats.Fetched != total-len(poisoned) {
		t.Fatalf("fetched %d, want %d; stats %+v", stats.Fetched, total-len(poisoned), stats)
	}
	if stats.Fetched != stats.Precerts+stats.ParseErrors+stats.Indexed {
		t.Fatalf("stats do not balance: %+v", stats)
	}
	// All poisoned indices here are non-precert positions, so every
	// parseable certificate is total - precerts - poisoned.
	for idx := range poisoned {
		if idx%10 == 9 {
			t.Fatalf("test bug: poisoned index %d is a precert slot", idx)
		}
	}
	wantIndexed := total - precerts - len(poisoned)
	if stats.Indexed != wantIndexed || stats.ParseErrors != 0 || stats.Precerts != precerts {
		t.Fatalf("indexed %d (parse errors %d, precerts %d), want %d/0/%d",
			stats.Indexed, stats.ParseErrors, stats.Precerts, wantIndexed, precerts)
	}
	// Retry accounting is exact: every 5xx, drop, and truncation the
	// client observed triggered exactly one retry (corrupt JSON is
	// non-retryable; latency and poisoning cause none).
	wantRetries := int(ist.Faults[faultinject.ServerError] + ist.Faults[faultinject.Drop] + ist.Faults[faultinject.Truncate])
	if stats.Retries != wantRetries {
		t.Fatalf("retries %d, want %d (injector %+v)", stats.Retries, wantRetries, ist)
	}
	// The indexed certificates are queryable.
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("chaos-%d.example", i)
		if res := m.Query(name); len(res.IDs) == 0 {
			t.Errorf("%s missing from the index after chaos crawl", name)
		}
	}

	// Second crawl: resumes at the head, refetches nothing.
	before := counter.getEntries.Load()
	stats2, err := m.SyncFromLog(ctx, client, SyncOptions{Batch: 32})
	if err != nil {
		t.Fatalf("resumed crawl: %v", err)
	}
	if stats2.Fetched != 0 || stats2.ResumedFrom != total {
		t.Fatalf("resumed crawl refetched: %+v", stats2)
	}
	if after := counter.getEntries.Load(); after != before {
		t.Fatalf("resumed crawl issued %d get-entries requests", after-before)
	}
}

// TestChaosObservability crawls through faults with a registry and a
// tracer shared between client and monitor, then asserts the
// instruments agree with SyncStats and the span ring shows the
// retry → backoff → success causality parented under the crawl root.
func TestChaosObservability(t *testing.T) {
	const total = 200
	log, _ := chaosLog(t, 61, total, 0)
	poisoned := map[int]bool{77: true}
	srv := httptest.NewServer((&ctlog.Server{Log: log}).Handler())
	defer srv.Close()

	injector := faultinject.New(faultinject.Config{
		Seed:          5,
		Rate:          0.3,
		Kinds:         []faultinject.Kind{faultinject.ServerError, faultinject.Drop, faultinject.CorruptJSON},
		PoisonEntries: poisoned,
	}, nil)
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(0)
	client := fastChaosClient(srv.URL, injector)
	client.Obs = reg
	client.Tracer = tracer

	m := New(Monitors()[0])
	stats, err := m.SyncFromLog(context.Background(), client, SyncOptions{Batch: 16, Obs: reg, Tracer: tracer})
	if err != nil {
		t.Fatalf("crawl: %v (injector %+v)", err, injector.Stats())
	}

	// Instruments agree with the crawl's own accounting.
	counters := map[string]int{
		"monitor_entries_synced_total":  stats.Fetched,
		"monitor_entries_indexed_total": stats.Indexed,
		"monitor_skipped_entries_total": stats.SkippedEntries,
		"monitor_bisections_total":      stats.Bisections,
		"ctlog_retries_total":           stats.Retries,
	}
	for name, want := range counters {
		if got := reg.Counter(name).Value(); int(got) != want {
			t.Errorf("%s = %d, stats say %d", name, got, want)
		}
	}
	if stats.SkippedEntries == 0 || stats.Bisections == 0 || stats.Retries == 0 {
		t.Fatalf("chaos run exercised too little: %+v", stats)
	}
	if got := reg.Counter("ctlog_requests_total", "outcome", "retryable").Value(); got == 0 {
		t.Error("no retryable outcomes counted despite injected faults")
	}
	if snap := reg.Histogram("ctlog_request_seconds", nil, "endpoint", "get-entries").Snapshot(); snap.Count == 0 {
		t.Error("get-entries latency histogram is empty")
	}

	// The exposition carries the names operators grep for.
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`ctlog_requests_total{outcome="retryable"}`,
		"ctlog_request_seconds_bucket",
		"monitor_entries_synced_total",
		"monitor_checkpoint_age_seconds",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %s", want)
		}
	}

	// Span causality: some request under the monitor.sync root saw a
	// retryable attempt, then a backoff, then a successful attempt.
	spans := tracer.Spans()
	byID := make(map[uint64]obs.SpanData, len(spans))
	var syncID uint64
	for _, s := range spans {
		byID[s.ID] = s
		if s.Name == "monitor.sync" {
			syncID = s.ID
		}
	}
	if syncID == 0 {
		t.Fatal("no monitor.sync root span recorded")
	}
	underSync := func(s obs.SpanData) bool {
		for s.Parent != 0 {
			if s.Parent == syncID {
				return true
			}
			p, ok := byID[s.Parent]
			if !ok {
				return false
			}
			s = p
		}
		return false
	}
	found := false
	for _, s := range spans {
		if !strings.HasPrefix(s.Name, "ctlog.") || !underSync(s) {
			continue
		}
		stage := 0
		for _, k := range tracer.Children(s.ID) {
			switch {
			case stage == 0 && k.Name == "attempt" && k.Attrs["outcome"] == "retryable":
				stage = 1
			case stage == 1 && k.Name == "backoff":
				stage = 2
			case stage == 2 && k.Name == "attempt" && k.Attrs["outcome"] == "ok":
				stage = 3
			}
		}
		if stage == 3 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no request span shows retryable attempt -> backoff -> ok attempt under monitor.sync")
	}
	// The poisoned entry left a skip-entry span naming its index.
	skips := 0
	for _, s := range spans {
		if s.Name == "skip-entry" && underSync(s) {
			skips++
			if s.Attrs["index"] != "77" {
				t.Errorf("skip-entry span index %q, want 77", s.Attrs["index"])
			}
		}
	}
	if skips != stats.SkippedEntries {
		t.Errorf("skip-entry spans %d, stats say %d", skips, stats.SkippedEntries)
	}
}

// TestChaosResumeAfterHardOutage checks mid-crawl failure semantics:
// when a region of the log hard-fails past retry exhaustion, the
// crawl returns an error but keeps its completed progress, and the
// next call resumes from the checkpoint.
func TestChaosResumeAfterHardOutage(t *testing.T) {
	const total = 60
	log, _ := chaosLog(t, 43, total, 0)
	inner := (&ctlog.Server{Log: log}).Handler()
	var outage atomic.Bool
	outage.Store(true)
	counter := &countingHandler{}
	counter.inner = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Entries from 40 on are unavailable during the outage.
		if outage.Load() && strings.HasSuffix(r.URL.Path, "/get-entries") &&
			strings.Contains(r.URL.RawQuery, "start=40") {
			http.Error(w, "shard down", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	})
	srv := httptest.NewServer(counter)
	defer srv.Close()

	client := fastChaosClient(srv.URL, nil)
	client.MaxRetries = 2
	ctx := context.Background()
	m := New(Monitors()[0])

	stats, err := m.SyncFromLog(ctx, client, SyncOptions{Batch: 20})
	if err == nil {
		t.Fatalf("crawl should fail while the shard is down; stats %+v", stats)
	}
	if !ctlog.IsRetryable(err) {
		t.Fatalf("outage should surface as retryable: %v", err)
	}
	if m.Checkpoint() != 40 || stats.Fetched != 40 {
		t.Fatalf("checkpoint %d fetched %d, want 40/40", m.Checkpoint(), stats.Fetched)
	}

	// Outage over: the next crawl fetches only the remainder.
	outage.Store(false)
	stats2, err := m.SyncFromLog(ctx, client, SyncOptions{Batch: 20})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.ResumedFrom != 40 || stats2.Fetched != total-40 {
		t.Fatalf("resume stats %+v", stats2)
	}
	if m.Checkpoint() != total {
		t.Fatalf("checkpoint %d", m.Checkpoint())
	}
}

// TestChaosStaleSTH drives the lagging-tree-head fault: crawls see an
// old head, finish early without error, and later crawls catch up
// without ever double-indexing.
func TestChaosStaleSTH(t *testing.T) {
	const phase1, total = 50, 100
	log, _ := chaosLog(t, 47, phase1, 0)
	srv := httptest.NewServer((&ctlog.Server{Log: log}).Handler())
	defer srv.Close()

	injector := faultinject.New(faultinject.Config{
		Seed:  7,
		Rate:  0.5,
		Kinds: []faultinject.Kind{faultinject.StaleSTH},
	}, nil)
	client := fastChaosClient(srv.URL, injector)
	ctx := context.Background()

	// Prime the injector's stale cache at size 50, then grow the log.
	if _, _, err := client.GetSTH(ctx); err != nil {
		t.Fatal(err)
	}
	c := cert(t, "late.example", "late.example")
	for i := phase1; i < total; i++ {
		if _, err := log.AddParsed(c.Raw, false); err != nil {
			t.Fatal(err)
		}
	}

	m := New(Monitors()[0])
	indexed := 0
	for round := 0; round < 20 && m.Checkpoint() < total; round++ {
		stats, err := m.SyncFromLog(ctx, client, SyncOptions{Batch: 16})
		if err != nil {
			t.Fatal(err)
		}
		indexed += stats.Indexed
	}
	if m.Checkpoint() != total {
		t.Fatalf("crawl never caught up past the stale head: checkpoint %d", m.Checkpoint())
	}
	if indexed != total {
		t.Fatalf("indexed %d across rounds, want %d (stale heads must not double-index)", indexed, total)
	}
	if res := m.Query("late.example"); len(res.IDs) != total-phase1 {
		t.Fatalf("late.example has %d ids, want %d", len(res.IDs), total-phase1)
	}
}

// TestChaosJournalReconciles replays the structured journal written
// during a chaos crawl and asserts the invariant the fleet soak's
// journal replay depends on: every bisection and skip in SyncStats has
// a matching journal event, and the single monitor.sync.end carries
// the exact final accounting.
func TestChaosJournalReconciles(t *testing.T) {
	const total = 260
	log, _ := chaosLog(t, 71, total, 0)
	poisoned := map[int]bool{33: true, 150: true, 201: true}
	srv := httptest.NewServer((&ctlog.Server{Log: log}).Handler())
	defer srv.Close()

	injector := faultinject.New(faultinject.Config{
		Seed:          17,
		Rate:          0.2,
		Kinds:         []faultinject.Kind{faultinject.ServerError, faultinject.Drop},
		PoisonEntries: poisoned,
	}, nil)
	client := fastChaosClient(srv.URL, injector)

	var buf bytes.Buffer
	journal := obs.NewJournal(&buf, nil)
	m := New(Monitors()[0])
	stats, err := m.SyncFromLog(context.Background(), client, SyncOptions{
		Batch: 16, Name: "chaos", Journal: journal,
	})
	if err != nil {
		t.Fatalf("crawl: %v (injector %+v)", err, injector.Stats())
	}
	if stats.SkippedEntries != len(poisoned) || stats.Bisections == 0 {
		t.Fatalf("chaos run exercised too little: %+v", stats)
	}

	events, err := obs.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	skipIdx := map[int]bool{}
	var end *obs.JournalEvent
	for i, ev := range events {
		if ev.Schema != obs.JournalSchema {
			t.Fatalf("event seq %d has schema v%d, want v%d", ev.Seq, ev.Schema, obs.JournalSchema)
		}
		if i > 0 && ev.Seq <= events[i-1].Seq {
			t.Fatalf("journal seq not strictly increasing at event %d: %d after %d", i, ev.Seq, events[i-1].Seq)
		}
		if name, _ := ev.Attrs["log"].(string); name != "chaos" {
			t.Fatalf("event %s seq %d names log %q, want chaos", ev.Type, ev.Seq, name)
		}
		counts[ev.Type]++
		switch ev.Type {
		case "monitor.skip":
			idx, ok := ev.Attrs["index"].(float64)
			if !ok {
				t.Fatalf("monitor.skip seq %d has no numeric index: %v", ev.Seq, ev.Attrs)
			}
			skipIdx[int(idx)] = true
		case "monitor.sync.end":
			end = &events[i]
		}
	}
	if counts["monitor.sync.start"] != 1 || counts["monitor.sync.end"] != 1 {
		t.Fatalf("sync.start/sync.end = %d/%d, want exactly one of each; counts %v",
			counts["monitor.sync.start"], counts["monitor.sync.end"], counts)
	}
	if counts["monitor.bisect"] != stats.Bisections {
		t.Errorf("monitor.bisect events %d, stats say %d bisections", counts["monitor.bisect"], stats.Bisections)
	}
	if counts["monitor.skip"] != stats.SkippedEntries {
		t.Errorf("monitor.skip events %d, stats say %d skipped", counts["monitor.skip"], stats.SkippedEntries)
	}
	if counts["monitor.quarantine"] != stats.Quarantined {
		t.Errorf("monitor.quarantine events %d, stats say %d quarantined", counts["monitor.quarantine"], stats.Quarantined)
	}
	for idx := range poisoned {
		if !skipIdx[idx] {
			t.Errorf("poisoned index %d has no monitor.skip event (skips journaled: %v)", idx, skipIdx)
		}
	}
	for key, want := range map[string]int{
		"fetched": stats.Fetched, "indexed": stats.Indexed,
		"deduped": stats.Deduped, "quarantined": stats.Quarantined,
		"skipped": stats.SkippedEntries, "bisections": stats.Bisections,
		"retries": stats.Retries, "resumed_from": stats.ResumedFrom,
	} {
		got, ok := end.Attrs[key].(float64)
		if !ok || int(got) != want {
			t.Errorf("sync.end attr %s = %v, want %d", key, end.Attrs[key], want)
		}
	}
	if interrupted, _ := end.Attrs["interrupted"].(bool); interrupted {
		t.Error("sync.end marked interrupted on a completed crawl")
	}
}

// TestChaosQuarantineJournalsEveryEntry pins the quarantine side of the
// replay invariant: a panicking index path leaves one
// monitor.quarantine event per quarantined entry, carrying the entry's
// index, and triggers a flight-recorder dump for forensics.
func TestChaosQuarantineJournalsEveryEntry(t *testing.T) {
	der := cert(t, "quarantine.example", "quarantine.example").Raw
	broken := &Monitor{Caps: Monitors()[0]} // nil index map: Index panics
	var buf bytes.Buffer
	dir := t.TempDir()
	stats := &SyncStats{}
	entries := []ctlog.Entry{
		{Index: 0, DER: der},
		{Index: 1, DER: []byte{0x00}}, // parse error, not a panic
		{Index: 2, DER: der},
	}
	opts := &SyncOptions{
		Name:    "broken",
		Journal: obs.NewJournal(&buf, nil),
		Flight:  obs.NewFlight(dir, 32, nil),
	}
	if err := broken.ingest(context.Background(), entries, stats, newSyncMetrics(nil, broken), opts); err != nil {
		t.Fatal(err)
	}
	if stats.Quarantined != 2 {
		t.Fatalf("Quarantined = %d, want 2", stats.Quarantined)
	}

	events, err := obs.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	quarantined := map[int]bool{}
	for _, ev := range events {
		if ev.Type != "monitor.quarantine" {
			continue
		}
		idx, ok := ev.Attrs["index"].(float64)
		if !ok {
			t.Fatalf("monitor.quarantine seq %d has no numeric index: %v", ev.Seq, ev.Attrs)
		}
		if name, _ := ev.Attrs["log"].(string); name != "broken" {
			t.Errorf("quarantine event names log %q, want broken", name)
		}
		quarantined[int(idx)] = true
	}
	if len(quarantined) != stats.Quarantined || !quarantined[0] || !quarantined[2] {
		t.Fatalf("quarantine events for indices %v, want exactly {0, 2}", quarantined)
	}
	dumps, err := filepath.Glob(filepath.Join(dir, "flight-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) == 0 {
		t.Fatal("quarantine left no flight-recorder dump")
	}
}

// TestChaosConcurrentMonitors exercises the shared client and
// injector from several crawls at once — the concurrency-sensitive
// part of the retry path — and is meant to run under -race.
func TestChaosConcurrentMonitors(t *testing.T) {
	const total = 120
	log, precerts := chaosLog(t, 53, total, 12)
	srv := httptest.NewServer((&ctlog.Server{Log: log}).Handler())
	defer srv.Close()

	injector := faultinject.New(faultinject.Config{
		Seed: 11,
		Rate: 0.2,
		Kinds: []faultinject.Kind{
			faultinject.ServerError,
			faultinject.Drop,
			faultinject.Truncate,
			faultinject.CorruptJSON,
		},
	}, nil)
	client := fastChaosClient(srv.URL, injector)
	ctx := context.Background()

	profiles := Monitors()
	monitors := []*Monitor{New(profiles[0]), New(profiles[1]), New(profiles[2]), New(profiles[4])}
	var wg sync.WaitGroup
	errs := make([]error, len(monitors))
	for i, m := range monitors {
		wg.Add(1)
		go func(i int, m *Monitor) {
			defer wg.Done()
			_, errs[i] = m.SyncFromLog(ctx, client, SyncOptions{Batch: 16})
		}(i, m)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("monitor %d: %v", i, err)
		}
	}
	for i, m := range monitors {
		if m.Checkpoint() != total {
			t.Errorf("monitor %d checkpoint %d, want %d", i, m.Checkpoint(), total)
		}
		if m.count != total-precerts {
			t.Errorf("monitor %d indexed %d certs, want %d", i, m.count, total-precerts)
		}
	}
}
