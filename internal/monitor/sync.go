package monitor

// Log synchronization: monitors crawl a CT log through its RFC
// 6962-style HTTP API and index what they can parse — the pipeline
// whose gaps the §6.1 threat model exploits. Prior work found
// third-party monitors miss certificates, and not only through
// Unicode tricks: crawl aborts, transport failures, and poisoned
// entries leave the same holes. The crawl here therefore degrades
// gracefully instead of aborting — progress is checkpointed so a
// later call resumes where the last one stopped, transient failures
// are retried inside ctlog.Client, and a batch that fails
// deterministically is bisected down to the single poisoned entry,
// which is skipped and accounted for rather than sinking the crawl.

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"repro/internal/ctlog"
	"repro/internal/obs"
	"repro/internal/x509cert"
)

// SyncOptions tunes one crawl.
type SyncOptions struct {
	// Batch is the entries-per-request window (default 64). The server
	// may clamp it further; sync advances by what actually arrived.
	Batch int
	// STHRetries is how many times the initial get-sth is re-attempted
	// at the crawl level when it fails non-retryably, e.g. with a
	// corrupted body the HTTP-level retry policy will not refetch
	// (default 3; negative disables).
	STHRetries int
	// Checkpoints, when non-nil, makes the crawl crash-safe: the
	// resume point is persisted after every ingested batch and
	// restored (for a monitor with no in-memory progress) before the
	// crawl starts, so a killed process resumes where it stopped
	// instead of refetching the log. Persistence failures degrade the
	// crawl (counted in SyncStats.CheckpointErrors and
	// monitor_checkpoint_persist_errors_total), they do not abort it.
	Checkpoints CheckpointStore
	// Obs, when non-nil, receives the crawl instruments
	// (monitor_entries_synced_total, monitor_entries_per_sec,
	// monitor_checkpoint, monitor_checkpoint_age_seconds, …).
	Obs *obs.Registry
	// Tracer, when non-nil, records the crawl's span tree: one
	// monitor.sync root, bisect spans for isolation splits, skip-entry
	// spans for poisoned entries, and (when the client shares the
	// tracer) the per-request attempt/backoff spans beneath them.
	Tracer *obs.Tracer
	// Sink, when non-nil, intercepts every fetched non-precert entry
	// BEFORE the checkpoint advances past it and before the local
	// parse/index step. It is how a fleet coordinator dedups entries
	// across logs and applies global backpressure: a Sink that blocks
	// on a bounded channel slows this crawl down to the consumer's
	// pace. Returning SinkIngest keeps the normal parse/index path;
	// SinkForward and SinkDuplicate skip it (the entry was consumed
	// elsewhere, or is a cross-log duplicate, counted in
	// SyncStats.Forwarded / SyncStats.Deduped). A non-nil error aborts
	// the crawl with the checkpoint still BEFORE the entry, so a resume
	// re-delivers it — an entry is never claimed without being sunk.
	Sink func(e ctlog.Entry) (SinkAction, error)
	// Name labels this crawl's journal events and flight-recorder
	// entries (the log's name in fleet mode; empty for a single-log
	// crawl).
	Name string
	// Journal, when non-nil, receives the crawl's audit events:
	// monitor.sync.start/.end, monitor.bisect, monitor.skip,
	// monitor.quarantine, and checkpoint.persist/.restore, each stamped
	// with the sync span so journal lines stitch to traces.
	Journal *obs.Journal
	// Flight, when non-nil, records fine-grained crawl events (batches,
	// bisects, skips, quarantines) into the "monitor" flight ring and
	// triggers a dump when an entry is quarantined.
	Flight *obs.Flight
	// Audit makes the crawl auditing-grade: every batch must prove
	// consistency with the signed tree head before any entry reaches a
	// sink or the index, every STH advance must prove consistency with
	// the last verified head, and an entry the tree cannot be verified
	// past aborts the crawl (wrapping ErrProofFailure) instead of
	// being skipped. See audit.go.
	Audit bool
	// STHStore, when non-nil (and Audit is set), persists the verified
	// tree head so consistency auditing survives restarts; a resume
	// re-anchors on the verified head.
	STHStore STHStore
	// ProofRetries is how many times a failing proof is refetched
	// before the failure becomes an incident (default 3; negative
	// disables).
	ProofRetries int
}

// SinkAction is a Sink's verdict on one fetched entry.
type SinkAction int

// Sink verdicts.
const (
	// SinkIngest runs the normal local parse/index path.
	SinkIngest SinkAction = iota
	// SinkForward means the sink consumed the entry (e.g. forwarded it
	// into a fleet pipeline); local indexing is skipped.
	SinkForward
	// SinkDuplicate marks a cross-log duplicate: skipped locally and
	// counted in SyncStats.Deduped.
	SinkDuplicate
)

func (o SyncOptions) batch() int {
	if o.Batch > 0 {
		return o.Batch
	}
	return 64
}

func (o SyncOptions) sthRetries() int {
	switch {
	case o.STHRetries > 0:
		return o.STHRetries
	case o.STHRetries < 0:
		return 0
	}
	return 3
}

func (o SyncOptions) proofRetries() int {
	switch {
	case o.ProofRetries > 0:
		return o.ProofRetries
	case o.ProofRetries < 0:
		return 0
	}
	return 3
}

// SyncStats summarizes one crawl.
type SyncStats struct {
	Fetched     int
	Precerts    int
	ParseErrors int
	Indexed     int
	// Retries counts HTTP-level retry attempts the client performed on
	// this crawl's behalf.
	Retries int
	// SkippedEntries counts entries abandoned after bisection isolated
	// them as individually unfetchable (poisoned encodings).
	SkippedEntries int
	// Forwarded counts entries a SyncOptions.Sink consumed instead of
	// the local index (fleet mode: first-seen entries fed downstream).
	Forwarded int
	// Deduped counts entries a SyncOptions.Sink identified as cross-log
	// duplicates; they are fetched (so checkpoint accounting is exact)
	// but not parsed or indexed.
	Deduped int
	// Quarantined counts entries whose parse or index step panicked;
	// the panic is contained per entry and the crawl continues.
	Quarantined int
	// CheckpointErrors counts failed checkpoint persistence attempts
	// (the crawl continues; only durability degrades).
	CheckpointErrors int
	// Bisections counts range splits performed while isolating
	// failures.
	Bisections int
	// Audited counts entries claimed only after Merkle verification
	// (Audit mode). The crawl's contract is Audited == Fetched −
	// SkippedEntries whenever Audit is on — and audit mode never
	// skips, so Audited == Fetched.
	Audited int
	// ProofFailures counts proof-failure incidents: inclusion or
	// consistency proofs that did not verify, or entries the tree
	// could not be verified past (see monitor_proof_failures_total).
	ProofFailures int
	// ResumedFrom is the checkpoint the crawl started at; 0 means a
	// fresh crawl.
	ResumedFrom int
	// Duration is the wall-clock time of the crawl.
	Duration time.Duration
}

// syncMetrics bundles the crawl's instrument handles; the zero value
// (all nil) is a valid no-op because every obs method is nil-safe.
type syncMetrics struct {
	synced      *obs.Counter // monitor_entries_synced_total (= SyncStats.Fetched)
	indexed     *obs.Counter // monitor_entries_indexed_total
	precerts    *obs.Counter // monitor_precerts_total
	parseErrors *obs.Counter // monitor_parse_errors_total
	skipped     *obs.Counter // monitor_skipped_entries_total
	forwarded   *obs.Counter // monitor_entries_forwarded_total
	deduped     *obs.Counter // monitor_entries_deduped_total
	bisections  *obs.Counter // monitor_bisections_total
	quarantined *obs.Counter // monitor_quarantined_entries_total
	cpErrors    *obs.Counter // monitor_checkpoint_persist_errors_total
	audited     *obs.Counter // monitor_entries_audited_total
	pfInclusion *obs.Counter // monitor_proof_failures_total{kind="inclusion"}
	pfConsist   *obs.Counter // monitor_proof_failures_total{kind="consistency"}
	pfHole      *obs.Counter // monitor_proof_failures_total{kind="hole"}
	perSec      *obs.Gauge   // monitor_entries_per_sec
	checkpoint  *obs.Gauge   // monitor_checkpoint
	treeSize    *obs.Gauge   // monitor_sth_tree_size
	ring        *obs.FlightRing
	start       time.Time
	fetched     int // this crawl's fetch count, for the entries/sec gauge
}

func newSyncMetrics(reg *obs.Registry, m *Monitor) *syncMetrics {
	sm := &syncMetrics{start: time.Now()}
	if reg == nil {
		return sm
	}
	reg.Help("monitor_entries_synced_total", "Log entries fetched by crawls (certificates and precerts).")
	reg.Help("monitor_entries_indexed_total", "Certificates indexed into the monitor.")
	reg.Help("monitor_precerts_total", "Precertificates fetched and filtered (§4.1).")
	reg.Help("monitor_parse_errors_total", "Entries whose DER the lenient parser rejected.")
	reg.Help("monitor_skipped_entries_total", "Entries abandoned after bisection isolated them as poisoned.")
	reg.Help("monitor_entries_forwarded_total", "Entries consumed by a sink (fleet pipeline) instead of the local index.")
	reg.Help("monitor_entries_deduped_total", "Entries a sink identified as cross-log duplicates.")
	reg.Help("monitor_bisections_total", "Range splits performed while isolating failures.")
	reg.Help("monitor_quarantined_entries_total", "Entries whose parse/index step panicked and was contained.")
	reg.Help("monitor_checkpoint_persist_errors_total", "Checkpoint saves that failed (crawl continued).")
	reg.Help("monitor_entries_audited_total", "Entries claimed only after Merkle proof verification (audit mode).")
	reg.Help("monitor_proof_failures_total", "Proof-failure incidents by kind (inclusion, consistency, hole).")
	reg.Help("monitor_entries_per_sec", "Fetch rate of the current (or last) crawl.")
	reg.Help("monitor_checkpoint", "Next log index the crawl will fetch.")
	reg.Help("monitor_checkpoint_age_seconds", "Seconds since the checkpoint last advanced; a growing age means the crawl is stuck.")
	reg.Help("monitor_sth_tree_size", "Tree size of the last fetched STH.")
	sm.synced = reg.Counter("monitor_entries_synced_total")
	sm.indexed = reg.Counter("monitor_entries_indexed_total")
	sm.precerts = reg.Counter("monitor_precerts_total")
	sm.parseErrors = reg.Counter("monitor_parse_errors_total")
	sm.skipped = reg.Counter("monitor_skipped_entries_total")
	sm.forwarded = reg.Counter("monitor_entries_forwarded_total")
	sm.deduped = reg.Counter("monitor_entries_deduped_total")
	sm.bisections = reg.Counter("monitor_bisections_total")
	sm.quarantined = reg.Counter("monitor_quarantined_entries_total")
	sm.cpErrors = reg.Counter("monitor_checkpoint_persist_errors_total")
	sm.audited = reg.Counter("monitor_entries_audited_total")
	sm.pfInclusion = reg.Counter("monitor_proof_failures_total", "kind", ProofFailInclusion)
	sm.pfConsist = reg.Counter("monitor_proof_failures_total", "kind", ProofFailConsistency)
	sm.pfHole = reg.Counter("monitor_proof_failures_total", "kind", ProofFailHole)
	sm.perSec = reg.Gauge("monitor_entries_per_sec")
	sm.checkpoint = reg.Gauge("monitor_checkpoint")
	sm.treeSize = reg.Gauge("monitor_sth_tree_size")
	// Checkpoint age is computed at scrape time; re-registering lets
	// each new crawl take the gauge over from its predecessor.
	reg.GaugeFunc("monitor_checkpoint_age_seconds", func() float64 {
		last := m.lastAdvance.Load()
		if last == 0 {
			return 0
		}
		return time.Since(time.Unix(0, last)).Seconds()
	})
	return sm
}

// proofFailed bumps the proof-failure counter for one incident kind.
func (sm *syncMetrics) proofFailed(kind string) {
	switch kind {
	case ProofFailInclusion:
		sm.pfInclusion.Inc()
	case ProofFailConsistency:
		sm.pfConsist.Inc()
	case ProofFailHole:
		sm.pfHole.Inc()
	}
}

// advanced records crawl progress: fetch counters, checkpoint gauges,
// and the entries/sec rate.
func (sm *syncMetrics) advanced(m *Monitor, fetched int) {
	sm.fetched += fetched
	sm.synced.Add(uint64(fetched))
	sm.checkpoint.Set(float64(m.nextIndex))
	m.lastAdvance.Store(time.Now().UnixNano())
	if secs := time.Since(sm.start).Seconds(); secs > 0 {
		sm.perSec.Set(float64(sm.fetched) / secs)
	}
}

// Checkpoint returns the next log index the monitor will fetch — every
// entry below it has been fetched (indexed, skipped, or rejected) by a
// previous crawl.
func (m *Monitor) Checkpoint() int { return m.nextIndex }

// LastAdvance reports when a crawl last advanced this monitor's
// checkpoint (the zero time if no crawl has run). Safe to call from
// any goroutine while a crawl runs; fleet health evaluation uses it to
// detect a stuck log without touching crawl internals.
func (m *Monitor) LastAdvance() time.Time {
	ns := m.lastAdvance.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// SetCheckpoint restores crawl progress, e.g. from persisted state.
func (m *Monitor) SetCheckpoint(n int) {
	if n < 0 {
		n = 0
	}
	m.nextIndex = n
}

// SyncFromLog crawls the log at client from the monitor's checkpoint
// to the current tree head, skipping precertificates (as the paper's
// §4.1 pipeline does), parsing leniently, and indexing every
// certificate the monitor's capabilities allow. On error the
// checkpoint reflects all completed work, so calling again resumes
// the crawl without refetching indexed entries.
func (m *Monitor) SyncFromLog(ctx context.Context, client *ctlog.Client, opts SyncOptions) (SyncStats, error) {
	started := time.Now()
	retries0 := client.Retries()
	if opts.Checkpoints != nil && m.nextIndex == 0 {
		// A monitor with no in-memory progress adopts the persisted
		// resume point — the crash-recovery path. In-memory progress
		// wins otherwise: it is at least as fresh as any save.
		if cp, ok, err := opts.Checkpoints.Load(); err != nil {
			return SyncStats{}, fmt.Errorf("monitor: loading checkpoint: %w", err)
		} else if ok {
			m.SetCheckpoint(cp.NextIndex)
			opts.Journal.Emit(ctx, "checkpoint.restore", map[string]any{
				"log": opts.Name, "index": cp.NextIndex,
			})
		}
	}
	if opts.Audit {
		if err := m.ensureAudit(ctx, &opts); err != nil {
			return SyncStats{}, err
		}
		if s := m.audit.tree.Size(); s < m.nextIndex {
			// The verified mirror is behind the checkpoint (lost or torn
			// anchor): re-anchor the crawl on the verified head. The gap
			// is refetched and re-verified; dedup and the index absorb
			// the re-delivery.
			opts.Journal.Emit(ctx, "monitor.audit.reanchor", map[string]any{
				"log": opts.Name, "from": m.nextIndex, "to": s,
			})
			m.SetCheckpoint(s)
		}
	}
	stats := SyncStats{ResumedFrom: m.nextIndex}
	sm := newSyncMetrics(opts.Obs, m)
	sm.ring = opts.Flight.Ring("monitor")
	m.lastAdvance.Store(started.UnixNano())
	ctx, span := opts.Tracer.Start(ctx, "monitor.sync")
	span.SetAttr("resumed_from", strconv.Itoa(m.nextIndex))
	treeSize := 0
	lastPersisted := -1
	persist := func() {
		if opts.Audit && m.audit != nil && opts.STHStore != nil {
			// The anchor goes first: if the process dies between the two
			// saves, a mirror ahead of the checkpoint is re-proven
			// per-entry on resume, while a checkpoint ahead of the
			// mirror would force a re-anchor refetch.
			if s := m.audit.tree.Size(); s != m.audit.lastSaved {
				v := VerifiedSTH{Size: s, Root: m.audit.tree.Root(), Hashes: m.audit.tree.Hashes(), UpdatedAt: time.Now()}
				if err := opts.STHStore.Save(v); err != nil {
					stats.CheckpointErrors++
					sm.cpErrors.Inc()
				} else {
					m.audit.lastSaved = s
				}
			}
		}
		if opts.Checkpoints == nil {
			return
		}
		cp := Checkpoint{NextIndex: m.nextIndex, TreeSize: treeSize, UpdatedAt: time.Now()}
		if err := opts.Checkpoints.Save(cp); err != nil {
			stats.CheckpointErrors++
			sm.cpErrors.Inc()
			return
		}
		if cp.NextIndex != lastPersisted {
			lastPersisted = cp.NextIndex
			opts.Journal.Emit(ctx, "checkpoint.persist", map[string]any{
				"log": opts.Name, "index": cp.NextIndex,
			})
		}
	}
	finish := func(err error) (SyncStats, error) {
		persist()
		stats.Retries = int(client.Retries() - retries0)
		stats.Duration = time.Since(started)
		span.SetAttr("fetched", strconv.Itoa(stats.Fetched))
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		span.End()
		// The end event carries the full accounting so a journal replay
		// reconciles exactly against SyncStats rollups — it is emitted on
		// every exit path, including context cancellation.
		opts.Journal.Emit(ctx, "monitor.sync.end", map[string]any{
			"log": opts.Name, "fetched": stats.Fetched, "indexed": stats.Indexed,
			"precerts": stats.Precerts, "parse_errors": stats.ParseErrors,
			"forwarded": stats.Forwarded, "deduped": stats.Deduped,
			"quarantined": stats.Quarantined, "skipped": stats.SkippedEntries,
			"bisections": stats.Bisections, "retries": stats.Retries,
			"audited": stats.Audited, "proof_failures": stats.ProofFailures,
			"resumed_from": stats.ResumedFrom, "interrupted": err != nil,
		})
		return stats, err
	}

	size, root, err := m.getSTH(ctx, client, opts)
	if err != nil {
		return finish(fmt.Errorf("monitor: get-sth: %w", err))
	}
	if opts.Audit {
		if err := m.auditSTHAdvance(ctx, client, size, root, &stats, sm, &opts); err != nil {
			return finish(err)
		}
	}
	treeSize = size
	sm.treeSize.Set(float64(size))
	span.SetAttr("tree_size", strconv.Itoa(size))
	opts.Journal.Emit(ctx, "monitor.sync.start", map[string]any{
		"log": opts.Name, "tree_size": size, "resume_from": m.nextIndex,
	})
	sm.ring.Record("sync-start", opts.Name, int64(m.nextIndex), int64(size))
	batch := opts.batch()
	for m.nextIndex < size {
		end := min(m.nextIndex+batch-1, size-1)
		if err := m.syncRange(ctx, client, m.nextIndex, end, &stats, sm, &opts); err != nil {
			return finish(err)
		}
		persist()
	}
	return finish(nil)
}

// getSTH fetches the tree head with crawl-level re-attempts layered
// over the client's own HTTP-level retries.
func (m *Monitor) getSTH(ctx context.Context, client *ctlog.Client, opts SyncOptions) (int, ctlog.Hash, error) {
	var lastErr error
	for attempt := 0; attempt <= opts.sthRetries(); attempt++ {
		size, root, err := client.GetSTH(ctx)
		if err == nil {
			return size, root, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return 0, ctlog.Hash{}, lastErr
}

// syncRange fetches and indexes entries [lo, hi]. A fetch that fails
// deterministically (corrupt payload, 4xx) is bisected: halves are
// refetched independently — corrupt-response faults are per-request,
// so a subrange refetch can succeed — and a single entry that still
// fails is skipped and counted. A retryable failure that survived the
// client's whole backoff budget means the log is genuinely down, so
// the crawl aborts with its checkpoint intact rather than skipping
// entries that would have been fetchable later. The checkpoint
// advances past everything handled.
func (m *Monitor) syncRange(ctx context.Context, client *ctlog.Client, lo, hi int, stats *SyncStats, sm *syncMetrics, opts *SyncOptions) error {
	if lo > hi {
		return nil
	}
	tracer := opts.Tracer
	entries, err := client.GetEntries(ctx, lo, hi)
	if err == nil {
		if len(entries) == 0 {
			// A 200 with no entries for a non-empty range would loop
			// forever; treat it as a server bug.
			return fmt.Errorf("monitor: get-entries [%d,%d]: empty response", lo, hi)
		}
		return m.deliver(ctx, client, entries, stats, sm, opts)
	}
	if ctx.Err() != nil || ctlog.IsRetryable(err) {
		return fmt.Errorf("monitor: get-entries [%d,%d]: %w", lo, hi, err)
	}
	if lo == hi {
		// Down to one entry. Non-retryable failures can still be
		// transient (a corrupted response is per-request), so re-attempt
		// a few times before declaring the entry itself poisoned.
		for attempt := 0; attempt < 3; attempt++ {
			entries, err = client.GetEntries(ctx, lo, hi)
			if err == nil && len(entries) > 0 {
				return m.deliver(ctx, client, entries, stats, sm, opts)
			}
			if err != nil && (ctx.Err() != nil || ctlog.IsRetryable(err)) {
				return fmt.Errorf("monitor: get-entries [%d,%d]: %w", lo, hi, err)
			}
		}
		if opts.Audit {
			// An unfetchable entry is a hole the Merkle mirror cannot be
			// verified past: under audit that is an incident, not a skip.
			return m.proofFailure(ctx, ProofFailHole, hi, "entry unfetchable; tree cannot be verified past it", stats, sm, opts)
		}
		// Isolated a persistently poisoned entry: skip it, keep crawling.
		_, skip := tracer.Start(ctx, "skip-entry")
		skip.SetAttr("index", strconv.Itoa(hi))
		skip.End()
		opts.Journal.Emit(ctx, "monitor.skip", map[string]any{"log": opts.Name, "index": hi})
		sm.ring.Record("skip", opts.Name, int64(hi), 0)
		stats.SkippedEntries++
		sm.skipped.Inc()
		m.nextIndex = hi + 1
		sm.advanced(m, 0)
		return nil
	}
	stats.Bisections++
	sm.bisections.Inc()
	bctx, bisect := tracer.Start(ctx, "bisect")
	bisect.SetAttr("lo", strconv.Itoa(lo))
	bisect.SetAttr("hi", strconv.Itoa(hi))
	defer bisect.End()
	opts.Journal.Emit(bctx, "monitor.bisect", map[string]any{"log": opts.Name, "lo": lo, "hi": hi})
	sm.ring.Record("bisect", opts.Name, int64(lo), int64(hi))
	mid := lo + (hi-lo)/2
	if err := m.syncRange(bctx, client, lo, mid, stats, sm, opts); err != nil {
		return err
	}
	// The first half may have been served short of mid (server batch
	// clamp); continue from the checkpoint, not from mid+1.
	return m.syncRange(bctx, client, max(mid+1, m.nextIndex), hi, stats, sm, opts)
}

// deliver gates one fetched batch through Merkle verification (audit
// mode) before ingest may claim any of it: no entry reaches a sink or
// the index without a proof chain to the signed tree head.
func (m *Monitor) deliver(ctx context.Context, client *ctlog.Client, entries []ctlog.Entry, stats *SyncStats, sm *syncMetrics, opts *SyncOptions) error {
	if opts.Audit {
		if err := m.auditBatch(ctx, client, entries, stats, sm, opts); err != nil {
			return err
		}
	}
	return m.ingest(ctx, entries, stats, sm, opts)
}

// ingest indexes one batch of entries, advances the checkpoint, and
// feeds the crawl instruments. A panic from the parse or index step —
// a hostile DER hitting a parser edge case — is contained to that one
// entry (quarantined and counted) so the batch, and the crawl, keep
// going. When opts carries a Sink, each non-precert entry is offered
// to it first; a sink error aborts the batch with the checkpoint still
// before the undelivered entry (work already handled stays claimed).
func (m *Monitor) ingest(ctx context.Context, entries []ctlog.Entry, stats *SyncStats, sm *syncMetrics, opts *SyncOptions) error {
	fetched := 0
	for _, e := range entries {
		if e.Index < m.nextIndex {
			// Overlap with already-crawled work (e.g. a replayed
			// response); never double-index.
			continue
		}
		action := SinkIngest
		if !e.Precert && opts != nil && opts.Sink != nil {
			var err error
			if action, err = opts.Sink(e); err != nil {
				// The checkpoint has NOT advanced past e: a resume
				// re-fetches and re-sinks it.
				sm.advanced(m, fetched)
				return fmt.Errorf("monitor: sink at entry %d: %w", e.Index, err)
			}
		}
		stats.Fetched++
		fetched++
		m.nextIndex = e.Index + 1
		if opts != nil && opts.Audit && m.audit != nil {
			// The batch was verified in deliver; claim the entry into the
			// mirror in lockstep with the checkpoint (entries already in
			// the mirror were individually re-proven, not re-appended).
			if e.Index == m.audit.tree.Size() {
				m.audit.tree.Append(ctlog.LeafHash(e.DER))
			}
			stats.Audited++
			sm.audited.Inc()
		}
		if e.Precert {
			stats.Precerts++
			sm.precerts.Inc()
			continue
		}
		switch action {
		case SinkForward:
			stats.Forwarded++
			sm.forwarded.Inc()
			continue
		case SinkDuplicate:
			stats.Deduped++
			sm.deduped.Inc()
			continue
		}
		switch m.ingestOne(e) {
		case ingestIndexed:
			stats.Indexed++
			sm.indexed.Inc()
		case ingestParseError:
			stats.ParseErrors++
			sm.parseErrors.Inc()
		case ingestQuarantined:
			stats.Quarantined++
			sm.quarantined.Inc()
			sm.ring.Record("quarantine", opts.Name, int64(e.Index), 0)
			opts.Journal.Emit(ctx, "monitor.quarantine", map[string]any{
				"log": opts.Name, "index": e.Index,
			})
			// A contained parser panic is exactly the forensic moment the
			// flight recorder exists for: dump the recent event history.
			// A dump failure must not fail the crawl.
			_, _ = opts.Flight.Trigger("quarantine")
		}
	}
	sm.advanced(m, fetched)
	sm.ring.Record("ingest", opts.Name, int64(m.nextIndex), int64(fetched))
	return nil
}

// ingestOne outcomes.
const (
	ingestIndexed = iota
	ingestParseError
	ingestQuarantined
)

// ingestOne parses and indexes a single entry, converting a panic into
// a quarantined outcome.
func (m *Monitor) ingestOne(e ctlog.Entry) (outcome int) {
	defer func() {
		if recover() != nil {
			outcome = ingestQuarantined
		}
	}()
	cert, err := x509cert.ParseWithMode(e.DER, x509cert.ParseLenient)
	if err != nil {
		return ingestParseError
	}
	m.Index(e.Index, cert)
	return ingestIndexed
}
