package monitor

// Log synchronization: monitors crawl a CT log through its RFC
// 6962-style HTTP API and index what they can parse — the pipeline
// whose gaps the §6.1 threat model exploits. Prior work found
// third-party monitors miss certificates; the P1.4 behaviour modeled
// here is one concrete mechanism.

import (
	"fmt"

	"repro/internal/ctlog"
	"repro/internal/x509cert"
)

// SyncStats summarizes one crawl.
type SyncStats struct {
	Fetched     int
	Precerts    int
	ParseErrors int
	Indexed     int
}

// SyncFromLog crawls the log at client, skipping precertificates (as
// the paper's §4.1 pipeline does), parsing leniently, and indexing
// every certificate the monitor's capabilities allow.
func (m *Monitor) SyncFromLog(client *ctlog.Client, batch int) (SyncStats, error) {
	if batch <= 0 {
		batch = 64
	}
	var stats SyncStats
	size, _, err := client.GetSTH()
	if err != nil {
		return stats, fmt.Errorf("monitor: get-sth: %w", err)
	}
	for start := 0; start < size; start += batch {
		end := start + batch - 1
		if end >= size {
			end = size - 1
		}
		entries, err := client.GetEntries(start, end)
		if err != nil {
			return stats, fmt.Errorf("monitor: get-entries: %w", err)
		}
		for _, e := range entries {
			stats.Fetched++
			if e.Precert {
				stats.Precerts++
				continue
			}
			cert, err := x509cert.ParseWithMode(e.DER, x509cert.ParseLenient)
			if err != nil {
				stats.ParseErrors++
				continue
			}
			m.Index(e.Index, cert)
			stats.Indexed++
		}
	}
	return stats, nil
}
