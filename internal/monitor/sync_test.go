package monitor

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"repro/internal/ctlog"
	"repro/internal/x509cert"
)

func TestSyncFromLog(t *testing.T) {
	log, err := ctlog.NewLog(17)
	if err != nil {
		t.Fatal(err)
	}
	// Three leaves and one precert.
	leaves := []*x509cert.Certificate{
		cert(t, "one.example", "one.example"),
		cert(t, "two.example", "two.example"),
		cert(t, "victim.example\x00.attacker.site"),
	}
	for _, c := range leaves {
		if _, err := log.AddParsed(c.Raw, false); err != nil {
			t.Fatal(err)
		}
	}
	pre := cert(t, "pre.example", "pre.example")
	if _, err := log.AddParsed(pre.Raw, true); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer((&ctlog.Server{Log: log}).Handler())
	defer srv.Close()
	client := &ctlog.Client{Base: srv.URL}
	ctx := context.Background()

	// A fuzzy monitor indexes everything and finds both clean domains.
	crtsh := New(Monitors()[0])
	stats, err := crtsh.SyncFromLog(ctx, client, SyncOptions{Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fetched != 4 || stats.Precerts != 1 || stats.Indexed != 3 {
		t.Fatalf("stats %+v", stats)
	}
	if stats.ResumedFrom != 0 || crtsh.Checkpoint() != 4 {
		t.Fatalf("checkpoint: resumed from %d, now %d", stats.ResumedFrom, crtsh.Checkpoint())
	}
	if res := crtsh.Query("one.example"); len(res.IDs) != 1 {
		t.Error("one.example not found after sync")
	}
	if res := crtsh.Query("two.example"); len(res.IDs) != 1 {
		t.Error("two.example not found after sync")
	}

	// A second sync resumes from the checkpoint and refetches nothing.
	stats, err = crtsh.SyncFromLog(ctx, client, SyncOptions{Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fetched != 0 || stats.ResumedFrom != 4 {
		t.Fatalf("resumed sync refetched: %+v", stats)
	}

	// New entries added after the first crawl are picked up from the
	// checkpoint onward.
	extra := cert(t, "three.example", "three.example")
	if _, err := log.AddParsed(extra.Raw, false); err != nil {
		t.Fatal(err)
	}
	stats, err = crtsh.SyncFromLog(ctx, client, SyncOptions{Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fetched != 1 || stats.Indexed != 1 || stats.ResumedFrom != 4 {
		t.Fatalf("incremental sync stats %+v", stats)
	}
	if res := crtsh.Query("three.example"); len(res.IDs) != 1 {
		t.Error("three.example not found after incremental sync")
	}

	// The SSLMate-style monitor syncs the same log but the NUL-bearing
	// forgery never becomes findable by the owner's query.
	sslmate := New(Monitors()[1])
	if _, err := sslmate.SyncFromLog(ctx, client, SyncOptions{Batch: 10}); err != nil {
		t.Fatal(err)
	}
	if res := sslmate.Query("victim.example"); len(res.IDs) != 0 {
		t.Error("P1.4 monitor should miss the crafted certificate")
	}
	// Fuzzy Crt.sh surfaces it despite the crafted CN.
	if res := crtsh.Query("victim.example"); len(res.IDs) == 0 {
		t.Error("fuzzy monitor should surface the crafted certificate")
	}
}

func TestSyncEmptyLog(t *testing.T) {
	log, err := ctlog.NewLog(18)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer((&ctlog.Server{Log: log}).Handler())
	defer srv.Close()
	m := New(Monitors()[0])
	stats, err := m.SyncFromLog(context.Background(), &ctlog.Client{Base: srv.URL}, SyncOptions{Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fetched != 0 {
		t.Fatalf("stats %+v", stats)
	}
}

// TestSyncBatchAboveServerCap asks for batches larger than the
// server's get-entries cap; the clamped responses must still advance
// the crawl to completion without gaps.
func TestSyncBatchAboveServerCap(t *testing.T) {
	log, err := ctlog.NewLog(19)
	if err != nil {
		t.Fatal(err)
	}
	c := cert(t, "capped.example", "capped.example")
	const n = 25
	for i := 0; i < n; i++ {
		if _, err := log.AddParsed(c.Raw, false); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer((&ctlog.Server{Log: log, MaxGetEntries: 4}).Handler())
	defer srv.Close()
	m := New(Monitors()[0])
	stats, err := m.SyncFromLog(context.Background(), &ctlog.Client{Base: srv.URL}, SyncOptions{Batch: 512})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fetched != n || stats.Indexed != n || m.Checkpoint() != n {
		t.Fatalf("stats %+v checkpoint %d", stats, m.Checkpoint())
	}
}

func TestSetCheckpoint(t *testing.T) {
	m := New(Monitors()[0])
	m.SetCheckpoint(7)
	if m.Checkpoint() != 7 {
		t.Fatalf("checkpoint %d", m.Checkpoint())
	}
	m.SetCheckpoint(-3)
	if m.Checkpoint() != 0 {
		t.Fatalf("negative checkpoint should clamp to 0, got %d", m.Checkpoint())
	}
}

// TestSyncSink drives the fleet interception point: a Sink sees every
// non-precert entry, its verdict routes the entry (forward / dedup /
// local ingest), and a sink error aborts the crawl with the checkpoint
// still BEFORE the undelivered entry so a resume re-sinks it.
func TestSyncSink(t *testing.T) {
	log, err := ctlog.NewLog(23)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"s0.example", "s1.example", "s2.example", "s3.example", "s4.example", "s5.example"}
	for _, n := range names {
		if _, err := log.AddParsed(cert(t, n, n).Raw, false); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := log.AddParsed(cert(t, "pre.example", "pre.example").Raw, true); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer((&ctlog.Server{Log: log}).Handler())
	defer srv.Close()
	client := &ctlog.Client{Base: srv.URL}
	ctx := context.Background()

	// Route by index: even → forward, odd → duplicate, and verify the
	// precert never reaches the sink.
	m := New(Monitors()[0])
	var sunk []int
	stats, err := m.SyncFromLog(ctx, client, SyncOptions{Batch: 4, Sink: func(e ctlog.Entry) (SinkAction, error) {
		if e.Precert {
			t.Errorf("sink saw precert at index %d", e.Index)
		}
		sunk = append(sunk, e.Index)
		if e.Index%2 == 0 {
			return SinkForward, nil
		}
		return SinkDuplicate, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Forwarded != 3 || stats.Deduped != 3 || stats.Indexed != 0 || stats.Precerts != 1 {
		t.Fatalf("stats %+v", stats)
	}
	if len(sunk) != len(names) {
		t.Fatalf("sink saw %d entries, want %d", len(sunk), len(names))
	}
	// Forwarded/deduped entries are accounted in Fetched and never
	// reach the local index.
	if stats.Fetched != len(names)+1 {
		t.Fatalf("Fetched = %d", stats.Fetched)
	}
	if res := m.Query("s0.example"); len(res.IDs) != 0 {
		t.Error("forwarded entry leaked into the local index")
	}

	// A sink error aborts with the checkpoint before the failed entry;
	// the resumed crawl re-delivers exactly that entry onward.
	m2 := New(Monitors()[0])
	var first []int
	_, err = m2.SyncFromLog(ctx, client, SyncOptions{Batch: 4, Sink: func(e ctlog.Entry) (SinkAction, error) {
		if e.Index == 3 {
			return 0, errors.New("backpressure shutdown")
		}
		first = append(first, e.Index)
		return SinkForward, nil
	}})
	if err == nil {
		t.Fatal("sink error did not abort the crawl")
	}
	if m2.Checkpoint() != 3 {
		t.Fatalf("checkpoint after sink error = %d, want 3 (before the undelivered entry)", m2.Checkpoint())
	}
	var second []int
	stats, err = m2.SyncFromLog(ctx, client, SyncOptions{Batch: 4, Sink: func(e ctlog.Entry) (SinkAction, error) {
		second = append(second, e.Index)
		return SinkForward, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ResumedFrom != 3 {
		t.Fatalf("resume started at %d, want 3", stats.ResumedFrom)
	}
	if len(second) == 0 || second[0] != 3 {
		t.Fatalf("resume re-delivered %v, want to start at entry 3", second)
	}
	if got := len(first) + len(second); got != len(names) {
		t.Fatalf("sink deliveries across runs = %d, want exactly %d (no loss, no double-sink)", got, len(names))
	}
}
