package monitor

import (
	"net/http/httptest"
	"testing"

	"repro/internal/ctlog"
	"repro/internal/x509cert"
)

func TestSyncFromLog(t *testing.T) {
	log, err := ctlog.NewLog(17)
	if err != nil {
		t.Fatal(err)
	}
	// Three leaves and one precert.
	leaves := []*x509cert.Certificate{
		cert(t, "one.example", "one.example"),
		cert(t, "two.example", "two.example"),
		cert(t, "victim.example\x00.attacker.site"),
	}
	for _, c := range leaves {
		if _, err := log.AddParsed(c.Raw, false); err != nil {
			t.Fatal(err)
		}
	}
	pre := cert(t, "pre.example", "pre.example")
	if _, err := log.AddParsed(pre.Raw, true); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer((&ctlog.Server{Log: log}).Handler())
	defer srv.Close()
	client := &ctlog.Client{Base: srv.URL}

	// A fuzzy monitor indexes everything and finds both clean domains.
	crtsh := New(Monitors()[0])
	stats, err := crtsh.SyncFromLog(client, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fetched != 4 || stats.Precerts != 1 || stats.Indexed != 3 {
		t.Fatalf("stats %+v", stats)
	}
	if res := crtsh.Query("one.example"); len(res.IDs) != 1 {
		t.Error("one.example not found after sync")
	}
	if res := crtsh.Query("two.example"); len(res.IDs) != 1 {
		t.Error("two.example not found after sync")
	}

	// The SSLMate-style monitor syncs the same log but the NUL-bearing
	// forgery never becomes findable by the owner's query.
	sslmate := New(Monitors()[1])
	if _, err := sslmate.SyncFromLog(client, 10); err != nil {
		t.Fatal(err)
	}
	if res := sslmate.Query("victim.example"); len(res.IDs) != 0 {
		t.Error("P1.4 monitor should miss the crafted certificate")
	}
	// Fuzzy Crt.sh surfaces it despite the crafted CN.
	if res := crtsh.Query("victim.example"); len(res.IDs) == 0 {
		t.Error("fuzzy monitor should surface the crafted certificate")
	}
}

func TestSyncEmptyLog(t *testing.T) {
	log, err := ctlog.NewLog(18)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer((&ctlog.Server{Log: log}).Handler())
	defer srv.Close()
	m := New(Monitors()[0])
	stats, err := m.SyncFromLog(&ctlog.Client{Base: srv.URL}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fetched != 0 {
		t.Fatalf("stats %+v", stats)
	}
}
