package monitor

import (
	"math/big"
	"testing"
	"time"

	"repro/internal/x509cert"
)

var (
	caKey, _   = x509cert.GenerateKey(31)
	leafKey, _ = x509cert.GenerateKey(32)
)

func cert(t *testing.T, cn string, sans ...string) *x509cert.Certificate {
	t.Helper()
	gns := make([]x509cert.GeneralName, 0, len(sans))
	for _, s := range sans {
		gns = append(gns, x509cert.DNSName(s))
	}
	tpl := &x509cert.Template{
		SerialNumber: big.NewInt(44),
		Issuer:       x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, "Monitor CA")),
		Subject:      x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, cn)),
		NotBefore:    time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:     time.Date(2025, 4, 1, 0, 0, 0, 0, time.UTC),
		SAN:          gns,
	}
	der, err := x509cert.Build(tpl, caKey, leafKey)
	if err != nil {
		t.Fatal(err)
	}
	c, err := x509cert.Parse(der)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFiveMonitors(t *testing.T) {
	ms := Monitors()
	if len(ms) != 5 {
		t.Fatalf("want 5 monitors, got %d", len(ms))
	}
}

func TestCaseInsensitiveSearchP11(t *testing.T) {
	// P1.1: case-insensitive querying is universal.
	for _, caps := range Monitors() {
		if caps.Discontinued {
			continue
		}
		m := New(caps)
		m.Index(1, cert(t, "Example.COM", "Example.COM"))
		if res := m.Query("example.com"); len(res.IDs) != 1 {
			t.Errorf("%s: case-insensitive query failed", caps.Name)
		}
	}
}

func TestFuzzySearchP12(t *testing.T) {
	// P1.2: monitors without fuzzy search miss variants.
	padded := cert(t, "victim.example corp", "victim.example")
	for _, caps := range Monitors() {
		if caps.Discontinued {
			continue
		}
		m := New(caps)
		m.Index(1, padded)
		res := m.Query("victim.example")
		found := len(res.IDs) > 0
		if caps.FuzzySearch && !found {
			t.Errorf("%s: fuzzy monitor should find padded CN", caps.Name)
		}
	}
	// Exact-match monitors miss the whitespace-padded CN when it is
	// the only indexed value.
	noFuzzy := New(Monitors()[2]) // Facebook: no fuzzy search
	onlyCN := cert(t, "victim.example corp")
	noFuzzy.Index(1, onlyCN)
	if res := noFuzzy.Query("victim.example"); len(res.IDs) != 0 {
		t.Error("exact-match monitor should miss the variant")
	}
}

func TestULabelCheckP13(t *testing.T) {
	// P1.3: only SSLMate and Facebook refuse deceptive IDN queries.
	for _, caps := range Monitors() {
		if caps.Discontinued {
			continue
		}
		m := New(caps)
		res := m.Query("xn--www-hn0a.example")
		if caps.ULabelCheck && !res.Refused {
			t.Errorf("%s: deceptive IDN query must be refused", caps.Name)
		}
		if !caps.ULabelCheck && res.Refused {
			t.Errorf("%s: query unexpectedly refused: %s", caps.Name, res.Reason)
		}
	}
}

func TestSpecialUnicodeIndexingP14(t *testing.T) {
	// P1.4: SSLMate-style monitors mis-index CNs with special content.
	sslmate := New(Monitors()[1])
	c := cert(t, "victim.example/extra path")
	sslmate.Index(1, c)
	// Only the substring before '/' is matched.
	if res := sslmate.Query("victim.example"); len(res.IDs) != 1 {
		t.Error("SSLMate should match the pre-slash substring")
	}
	if res := sslmate.Query("victim.example/extra path"); len(res.IDs) != 0 {
		t.Error("full value must not match")
	}
}

func TestMisleadExperiment(t *testing.T) {
	// A forged certificate with a NUL-bearing CN and no clean SAN: the
	// owner's domain query must miss it on monitors without fuzzy
	// indexing of the corrupted field.
	forged := cert(t, "victim.example\x00.attacker.site")
	results := MisleadExperiment(forged, "victim.example")
	concealedCount := 0
	for _, r := range results {
		if r.Concealed {
			concealedCount++
		}
	}
	if concealedCount == 0 {
		t.Fatal("the crafted certificate should evade at least one monitor")
	}
	// A clean forgery (exact victim CN) is surfaced by every active
	// monitor.
	clean := cert(t, "victim.example", "victim.example")
	visible := 0
	for _, r := range MisleadExperiment(clean, "victim.example") {
		if !r.Concealed {
			visible++
		}
	}
	if visible < 3 {
		t.Fatalf("clean forgery should be visible to most monitors, got %d", visible)
	}
}

func TestPunycodeQuerySupport(t *testing.T) {
	for _, caps := range Monitors() {
		if caps.Discontinued || !caps.PunycodeIDN {
			continue
		}
		m := New(caps)
		m.Index(1, cert(t, "xn--bcher-kva.example", "xn--bcher-kva.example"))
		if res := m.Query("xn--bcher-kva.example"); len(res.IDs) != 1 {
			t.Errorf("%s: punycode query failed", caps.Name)
		}
	}
}

func TestUnicodeQueryConversion(t *testing.T) {
	// Monitors convert U-label queries via Punycode when supported.
	m := New(Monitors()[0]) // Crt.sh
	m.Index(1, cert(t, "xn--bcher-kva.example", "xn--bcher-kva.example"))
	if res := m.Query("bücher.example"); len(res.IDs) != 1 {
		t.Error("U-label query should convert and match")
	}
}

func TestIDNccTLDSupport(t *testing.T) {
	// Entrust (no IDN-ccTLD support) refuses; the others answer. Use an
	// active Entrust-like profile to isolate the capability.
	caps := Capabilities{Name: "Entrust-like", PunycodeIDN: true}
	m := New(caps)
	m.Index(1, cert(t, "bank.xn--p1ai", "bank.xn--p1ai"))
	if res := m.Query("bank.xn--p1ai"); !res.Refused {
		t.Error("monitor without IDN-ccTLD support must refuse")
	}
	full := New(Monitors()[0]) // Crt.sh supports IDN ccTLDs
	full.Index(1, cert(t, "bank.xn--p1ai", "bank.xn--p1ai"))
	if res := full.Query("bank.xn--p1ai"); len(res.IDs) != 1 {
		t.Error("IDN-ccTLD-capable monitor should answer")
	}
}
