package monitor

// Containment for crawls: Supervise runs a function (typically one
// monitor's SyncFromLog loop) under a restart policy, converting
// panics into errors and errors into capped-exponential-backoff
// restarts. With a CheckpointStore wired into the crawl, each restart
// resumes from the last persisted index, so a hostile entry or a log
// outage degrades a crawl into a delay instead of killing the process.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
)

// Supervisor defaults.
const (
	DefaultMaxRestarts        = 5
	DefaultSupervisorBackoff  = 100 * time.Millisecond
	defaultSupervisorMaxSleep = 5 * time.Second
)

// SupervisorOptions tunes Supervise. The zero value adopts the
// defaults above.
type SupervisorOptions struct {
	// MaxRestarts caps re-runs after the first attempt (negative
	// disables restarts; zero means DefaultMaxRestarts).
	MaxRestarts int
	// BaseBackoff/MaxBackoff shape the capped exponential delay
	// between restarts.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// OnRestart, when non-nil, observes each restart decision. The
	// Restart record carries the 1-based attempt number about to run,
	// the error that caused it, and — when the failure was a recovered
	// panic — the panic value itself, so a coordinator can distinguish
	// a flapping (repeatedly crashing) worker from one hitting ordinary
	// transient errors and escalate it instead of restarting forever.
	OnRestart func(Restart)
	// Obs, when non-nil, receives monitor_supervisor_restarts_total
	// and monitor_supervisor_panics_total.
	Obs *obs.Registry
	// Flight, when non-nil, dumps the flight recorder when a supervised
	// run panics — the crash window is exactly what the rings hold.
	Flight *obs.Flight
	// Sleep overrides the backoff sleep (tests inject a no-op). The
	// default honors context cancellation.
	Sleep func(context.Context, time.Duration) error
	// Terminal, when non-nil, classifies errors that must NOT be
	// retried: Supervise returns such an error immediately, restart
	// budget unspent. Proof failures are the canonical case — a log
	// caught lying would just lie again, and a supervisor that retried
	// it into its stall budget would misfile distrust as a stall.
	Terminal func(error) bool
}

func (o SupervisorOptions) maxRestarts() int {
	switch {
	case o.MaxRestarts > 0:
		return o.MaxRestarts
	case o.MaxRestarts < 0:
		return 0
	}
	return DefaultMaxRestarts
}

func (o SupervisorOptions) backoff(attempt int) time.Duration {
	base := o.BaseBackoff
	if base <= 0 {
		base = DefaultSupervisorBackoff
	}
	maxd := o.MaxBackoff
	if maxd <= 0 {
		maxd = defaultSupervisorMaxSleep
	}
	d := base << uint(attempt)
	if d > maxd || d <= 0 {
		d = maxd
	}
	return d
}

func (o SupervisorOptions) sleep(ctx context.Context, d time.Duration) error {
	if o.Sleep != nil {
		return o.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// PanicError is the error a recovered panic surfaces through
// Supervise, so callers (and OnRestart hooks) can distinguish crashes
// from ordinary failures.
type PanicError struct {
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("monitor: supervised run panicked: %v", e.Value)
}

// Restart describes one supervisor restart decision, delivered to
// SupervisorOptions.OnRestart before the backoff sleep.
type Restart struct {
	// Attempt is the 1-based attempt number about to run; it equals the
	// number of restarts performed so far.
	Attempt int
	// Err is the failure that caused this restart (a *PanicError when
	// the run crashed).
	Err error
	// Panicked reports whether Err wraps a recovered panic;
	// PanicValue then carries the recovered value.
	Panicked   bool
	PanicValue any
}

// Supervise runs fn, restarting it on error or panic with capped
// exponential backoff until it succeeds, the restart budget is spent,
// or ctx is cancelled. It returns nil on success, ctx.Err() on
// cancellation, and otherwise the last failure.
func Supervise(ctx context.Context, opts SupervisorOptions, fn func(context.Context) error) error {
	var restarts, panics *obs.Counter
	if opts.Obs != nil {
		opts.Obs.Help("monitor_supervisor_restarts_total", "Supervised crawl restarts after an error or panic.")
		opts.Obs.Help("monitor_supervisor_panics_total", "Panics recovered by the crawl supervisor.")
		restarts = opts.Obs.Counter("monitor_supervisor_restarts_total")
		panics = opts.Obs.Counter("monitor_supervisor_panics_total")
	}
	run := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				panics.Inc()
				_, _ = opts.Flight.Trigger("panic")
				err = &PanicError{Value: r}
			}
		}()
		return fn(ctx)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		lastErr = run()
		if lastErr == nil {
			return nil
		}
		if ctx.Err() != nil {
			// Cancellation, not failure: the error is just the run
			// observing its dying context.
			return ctx.Err()
		}
		if opts.Terminal != nil && opts.Terminal(lastErr) {
			return lastErr
		}
		if attempt >= opts.maxRestarts() {
			return lastErr
		}
		restarts.Inc()
		if opts.OnRestart != nil {
			r := Restart{Attempt: attempt + 1, Err: lastErr}
			var pe *PanicError
			if errors.As(lastErr, &pe) {
				r.Panicked = true
				r.PanicValue = pe.Value
			}
			opts.OnRestart(r)
		}
		if err := opts.sleep(ctx, opts.backoff(attempt)); err != nil {
			return err
		}
	}
}
