// Package monitor models the five public CT monitors the paper probes
// (§6.1, Table 6) — Crt.sh, SSLMate Spotter, Facebook Monitor, Entrust
// Search, and MerkleMap — as indexing/search pipelines over our CT log
// substrate, and implements the "misleading CT monitors" threat
// experiment: can a forged certificate be crafted so the domain owner's
// queries miss it?
package monitor

import (
	"strings"
	"sync/atomic"

	"repro/internal/idna"
	"repro/internal/punycode"
	"repro/internal/uni"
	"repro/internal/x509cert"
)

// Capabilities is a row of Table 6.
type Capabilities struct {
	Name string
	// QuerySubjectAttrs: monitors that index O/OU/emailAddress in
	// addition to CN+SAN (Crt.sh only).
	QuerySubjectAttrs bool
	CaseSensitive     bool
	UnicodeSearch     bool
	FuzzySearch       bool
	ULabelCheck       bool
	PunycodeIDN       bool
	PunycodeIDNccTLD  bool
	// FailsOnSpecialUnicode: fields containing special Unicode are
	// mis-indexed or dropped (P1.4).
	FailsOnSpecialUnicode bool
	// Discontinued marks Entrust's retired service.
	Discontinued bool
}

// Monitors returns the five Table 6 profiles.
func Monitors() []Capabilities {
	return []Capabilities{
		{Name: "Crt.sh", QuerySubjectAttrs: true, FuzzySearch: true, PunycodeIDN: true, PunycodeIDNccTLD: true},
		{Name: "SSLMate Spotter", ULabelCheck: true, PunycodeIDN: true, PunycodeIDNccTLD: true, FailsOnSpecialUnicode: true},
		{Name: "Facebook Monitor", ULabelCheck: true, PunycodeIDN: true, PunycodeIDNccTLD: true},
		{Name: "Entrust Search", PunycodeIDN: true, Discontinued: true},
		{Name: "MerkleMap", FuzzySearch: true, PunycodeIDN: true, PunycodeIDNccTLD: true},
	}
}

// Monitor is one instantiated monitor with its index.
type Monitor struct {
	Caps  Capabilities
	index map[string][]int // normalized key → certificate ids
	count int
	// nextIndex is the crawl checkpoint: the next log entry index
	// SyncFromLog will fetch (see sync.go).
	nextIndex int
	// lastAdvance is the unix-nano time the checkpoint last moved;
	// atomic because the checkpoint-age gauge reads it from the scrape
	// goroutine while a crawl runs.
	lastAdvance atomic.Int64
	// audit is the Merkle audit state (verified mirror of the log's
	// tree); nil until a crawl runs with SyncOptions.Audit (see
	// audit.go).
	audit *auditor
}

// New builds an empty monitor with the given capabilities.
func New(caps Capabilities) *Monitor {
	return &Monitor{Caps: caps, index: make(map[string][]int)}
}

// normalizeKey lowercases for the (universal, P1.1) case-insensitive
// behaviour.
func (m *Monitor) normalizeKey(s string) string { return strings.ToLower(s) }

// indexable reports whether the monitor can index a field value; the
// P1.4 failure mode drops or truncates values with special characters.
func (m *Monitor) indexable(v string) (string, bool) {
	if !m.Caps.FailsOnSpecialUnicode {
		return v, true
	}
	// SSLMate-style behaviour: a CN containing a space is ignored
	// entirely; only the substring before '/' is matched.
	if strings.ContainsAny(v, " ") && !strings.Contains(v, ".") {
		return "", false
	}
	if i := strings.IndexByte(v, '/'); i >= 0 {
		v = v[:i]
	}
	for _, r := range v {
		if uni.IsControl(r) {
			return "", false
		}
	}
	return v, true
}

// Index ingests one certificate (by id) into the monitor.
func (m *Monitor) Index(id int, c *x509cert.Certificate) {
	m.count++
	add := func(v string) {
		if v == "" {
			return
		}
		if vv, ok := m.indexable(v); ok {
			key := m.normalizeKey(vv)
			m.index[key] = append(m.index[key], id)
		}
	}
	add(c.Subject.CommonName())
	for _, n := range c.DNSNames() {
		add(n)
	}
	if m.Caps.QuerySubjectAttrs {
		add(c.Subject.First(x509cert.OIDOrganizationName))
		add(c.Subject.First(x509cert.OIDOrganizationalUnit))
		add(c.Subject.First(x509cert.OIDEmailAddress))
	}
}

// QueryResult reports one search outcome.
type QueryResult struct {
	IDs     []int
	Refused bool   // the monitor rejected the query input
	Reason  string // why it was refused
}

// Query searches the index, modeling each monitor's input handling.
func (m *Monitor) Query(q string) QueryResult {
	if m.Caps.Discontinued {
		return QueryResult{Refused: true, Reason: "service discontinued"}
	}
	// Unicode query inputs: none of the monitors support them (Table 6
	// "Unicode search ×"); U-label queries must be converted by the
	// user unless the monitor converts internally via Punycode support.
	if !isASCII(q) {
		if !m.Caps.PunycodeIDN {
			return QueryResult{Refused: true, Reason: "non-ASCII query unsupported"}
		}
		a, err := idna.ToASCII(q)
		if err != nil {
			return QueryResult{Refused: true, Reason: "unconvertible query"}
		}
		q = a
	}
	// IDN ccTLD support: Entrust-style monitors cannot handle queries
	// under internationalized country-code TLDs at all (Table 6).
	if !m.Caps.PunycodeIDNccTLD && idna.IsIDNccTLD(q) {
		return QueryResult{Refused: true, Reason: "IDN ccTLD unsupported"}
	}
	// U-label legality check (P1.3): monitors with the check refuse
	// deceptive labels; those without accept them.
	if m.Caps.ULabelCheck {
		for _, label := range strings.Split(strings.ToLower(q), ".") {
			if strings.HasPrefix(label, punycode.ACEPrefix) {
				if err := idna.ValidateALabel(label); err != nil {
					return QueryResult{Refused: true, Reason: "illegal IDN: " + err.Error()}
				}
			}
		}
	}
	key := m.normalizeKey(q)
	if m.Caps.CaseSensitive {
		key = q
	}
	if ids, ok := m.index[key]; ok {
		return QueryResult{IDs: dedupe(ids)}
	}
	if m.Caps.FuzzySearch {
		var out []int
		for k, ids := range m.index {
			if strings.Contains(k, key) {
				out = append(out, ids...)
			}
		}
		return QueryResult{IDs: dedupe(out)}
	}
	return QueryResult{}
}

func dedupe(ids []int) []int {
	seen := make(map[int]bool, len(ids))
	var out []int
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// MisleadResult is the outcome of the §6.1 threat experiment for one
// monitor: whether the owner's natural queries surface the forged
// certificate.
type MisleadResult struct {
	Monitor   string
	Concealed bool
	Detail    string
}

// MisleadExperiment indexes a forged certificate targeting victimDomain
// into each monitor, then runs the owner's queries (the domain and its
// CN) and reports which monitors fail to surface the forgery.
func MisleadExperiment(forged *x509cert.Certificate, victimDomain string) []MisleadResult {
	var out []MisleadResult
	for _, caps := range Monitors() {
		m := New(caps)
		m.Index(1, forged)
		if caps.Discontinued {
			out = append(out, MisleadResult{Monitor: caps.Name, Concealed: true, Detail: "service discontinued"})
			continue
		}
		res := m.Query(victimDomain)
		if len(res.IDs) == 0 {
			detail := "owner query returns nothing"
			if res.Refused {
				detail = "owner query refused: " + res.Reason
			}
			out = append(out, MisleadResult{Monitor: caps.Name, Concealed: true, Detail: detail})
			continue
		}
		out = append(out, MisleadResult{Monitor: caps.Name, Concealed: false, Detail: "forgery surfaced"})
	}
	return out
}
