//go:build !unix

package monitor

// Fallback advisory locking for platforms without flock(2): an O_EXCL
// sentinel file. Weaker than the unix path — a crashed holder leaves
// the sentinel behind and the operator must remove it — but it still
// guarantees the fail-fast collision semantics the fleet depends on.

import (
	"fmt"
	"os"
	"strconv"
)

type lockHandle struct {
	path string
}

func acquireLock(path string) (*lockHandle, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrCheckpointLocked, path)
		}
		return nil, fmt.Errorf("monitor: creating checkpoint lock %s: %w", path, err)
	}
	f.WriteString(strconv.Itoa(os.Getpid()) + "\n")
	f.Close()
	return &lockHandle{path: path}, nil
}

func (h *lockHandle) release() error {
	if h == nil || h.path == "" {
		return nil
	}
	err := os.Remove(h.path)
	h.path = ""
	return err
}
