package monitor

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/ctlog"
)

// verifiedSTHForSize builds a self-consistent anchor by appending
// deterministic leaves to a compact tree.
func verifiedSTHForSize(size int) VerifiedSTH {
	t := &ctlog.CompactTree{}
	for i := 0; i < size; i++ {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(i))
		t.Append(ctlog.LeafHash(b[:]))
	}
	return VerifiedSTH{
		Size:      t.Size(),
		Root:      t.Root(),
		Hashes:    t.Hashes(),
		UpdatedAt: time.Unix(1700000000, 12345),
	}
}

func TestSTHStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, size := range []int{1, 2, 3, 7, 64, 100} {
		store := &FileSTHStore{Path: filepath.Join(dir, "anchor.sth")}
		want := verifiedSTHForSize(size)
		if err := store.Save(want); err != nil {
			t.Fatalf("save size %d: %v", size, err)
		}
		got, ok, err := store.Load()
		if err != nil || !ok {
			t.Fatalf("load size %d: ok=%v err=%v", size, ok, err)
		}
		if got.Size != want.Size || got.Root != want.Root || !got.UpdatedAt.Equal(want.UpdatedAt) {
			t.Fatalf("size %d round-trip: got %+v, want %+v", size, got, want)
		}
		if len(got.Hashes) != len(want.Hashes) {
			t.Fatalf("size %d: %d hashes back, want %d", size, len(got.Hashes), len(want.Hashes))
		}
		for i := range got.Hashes {
			if got.Hashes[i] != want.Hashes[i] {
				t.Fatalf("size %d hash %d differs", size, i)
			}
		}
	}
}

func TestSTHStoreMissingFileIsCleanNoRecord(t *testing.T) {
	store := &FileSTHStore{Path: filepath.Join(t.TempDir(), "never-written.sth")}
	_, ok, err := store.Load()
	if err != nil || ok {
		t.Fatalf("missing file: ok=%v err=%v, want clean no-record", ok, err)
	}
}

// TestSTHStoreRejectsDamage corrupts a valid record every way a crash
// or bit rot can, and requires each variant to read back as a clean
// "no record" — never an error, never a trusted anchor.
func TestSTHStoreRejectsDamage(t *testing.T) {
	valid, err := verifiedSTHForSize(13).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	reseal := func(buf []byte) []byte {
		n := len(buf) - 4
		binary.LittleEndian.PutUint32(buf[n:], crc32.ChecksumIEEE(buf[:n]))
		return buf
	}
	damage := map[string][]byte{
		"empty":           {},
		"torn header":     valid[:20],
		"torn mid-hashes": valid[:sthHeaderLen+40],
		"torn CRC":        valid[:len(valid)-2],
		"bad magic": func() []byte {
			b := append([]byte(nil), valid...)
			b[0] = 'X'
			return b
		}(),
		"flipped payload byte": func() []byte {
			b := append([]byte(nil), valid...)
			b[sthHeaderLen+5] ^= 0x01 // hash byte: CRC now mismatches
			return b
		}(),
		"future version": func() []byte {
			b := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint16(b[4:6], 99)
			return reseal(b)
		}(),
		"hash count disagrees with size": func() []byte {
			b := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint64(b[8:16], 12) // popcount 2, record carries popcount(13)=3 hashes
			return reseal(b)
		}(),
		"root does not fold from hashes": func() []byte {
			b := append([]byte(nil), valid...)
			b[24] ^= 0xff // root byte, CRC resealed so only the fold check can catch it
			return reseal(b)
		}(),
		"trailing garbage": append(append([]byte(nil), valid...), 0xde, 0xad),
	}
	dir := t.TempDir()
	for name, buf := range damage {
		path := filepath.Join(dir, "anchor.sth")
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		store := &FileSTHStore{Path: path}
		v, ok, err := store.Load()
		if err != nil {
			t.Errorf("%s: Load errored (%v), want clean no-record", name, err)
		}
		if ok {
			t.Errorf("%s: damaged record loaded as trusted anchor %+v", name, v)
		}
	}
}

func TestSTHStoreSaveReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	store := &FileSTHStore{Path: filepath.Join(dir, "anchor.sth")}
	if err := store.Save(verifiedSTHForSize(5)); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(verifiedSTHForSize(12)); err != nil {
		t.Fatal(err)
	}
	got, ok, err := store.Load()
	if err != nil || !ok || got.Size != 12 {
		t.Fatalf("after two saves: size %d ok=%v err=%v, want 12", got.Size, ok, err)
	}
	// No temp files leak past a successful rename.
	matches, err := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("temp files left behind: %v", matches)
	}
}

func TestVerifiedSTHMarshalRejectsBadShapes(t *testing.T) {
	if _, err := (VerifiedSTH{Size: -1}).MarshalBinary(); err == nil {
		t.Error("negative size marshaled")
	}
	v := verifiedSTHForSize(3)
	v.Hashes = v.Hashes[:1] // popcount(3) = 2
	if _, err := v.MarshalBinary(); err == nil {
		t.Error("hash count / size mismatch marshaled")
	}
}

// TestSTHStoreRecordBytes pins the wire layout so a future refactor
// cannot silently orphan every anchor on disk.
func TestSTHStoreRecordBytes(t *testing.T) {
	v := verifiedSTHForSize(3)
	buf, err := v.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != sthHeaderLen+32*2+4 {
		t.Fatalf("record is %d bytes, want %d", len(buf), sthHeaderLen+32*2+4)
	}
	if !bytes.Equal(buf[0:4], []byte("USTH")) {
		t.Fatalf("magic %q", buf[0:4])
	}
	if binary.LittleEndian.Uint16(buf[4:6]) != 1 {
		t.Fatalf("version %d", binary.LittleEndian.Uint16(buf[4:6]))
	}
	if binary.LittleEndian.Uint64(buf[8:16]) != 3 {
		t.Fatalf("size field %d", binary.LittleEndian.Uint64(buf[8:16]))
	}
	var back VerifiedSTH
	if err := back.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if back.Size != v.Size || back.Root != v.Root {
		t.Fatalf("round-trip mismatch: %+v vs %+v", back, v)
	}
}
