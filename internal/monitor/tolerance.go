package monitor

// The Appendix F.2 tolerance experiment: sample noncompliant Unicerts
// (especially those with non-printable characters in CN/O/OU/SAN),
// index them into each monitor, and measure how many the owner's
// natural queries fail to return — the "Fail to return certs with
// special Unicode" column of Table 6.

import (
	"strings"

	"repro/internal/uni"
	"repro/internal/x509cert"
)

// ToleranceRow is one monitor's outcome over the sample.
type ToleranceRow struct {
	Monitor string
	Sampled int
	Found   int
	Missed  int
	Refused int // owner queries the monitor rejected outright
}

// ownerQuery derives the query a domain owner would type for a
// certificate: the first SAN DNSName with special characters stripped
// (owners search for their real domain, not the crafted bytes), falling
// back to a cleaned CN.
func ownerQuery(c *x509cert.Certificate) string {
	clean := func(s string) string {
		// The owner searches for their real domain, which ends where the
		// crafted special characters begin.
		if i := strings.IndexFunc(s, func(r rune) bool {
			return uni.IsControl(r) || r == '�'
		}); i >= 0 {
			s = s[:i]
		}
		return s
	}
	if names := c.DNSNames(); len(names) > 0 {
		return clean(names[0])
	}
	return clean(c.Subject.CommonName())
}

// ToleranceExperiment indexes each sampled certificate into a fresh
// instance of every monitor and replays the owner's query.
func ToleranceExperiment(sample []*x509cert.Certificate) []ToleranceRow {
	var out []ToleranceRow
	for _, caps := range Monitors() {
		row := ToleranceRow{Monitor: caps.Name}
		if caps.Discontinued {
			out = append(out, row)
			continue
		}
		for i, c := range sample {
			q := ownerQuery(c)
			if q == "" {
				continue
			}
			row.Sampled++
			m := New(caps)
			m.Index(i, c)
			res := m.Query(q)
			switch {
			case res.Refused:
				row.Refused++
				row.Missed++
			case len(res.IDs) > 0:
				row.Found++
			default:
				row.Missed++
			}
		}
		out = append(out, row)
	}
	return out
}
