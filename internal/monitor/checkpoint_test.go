package monitor

import (
	"bytes"
	"context"
	"errors"
	"hash/crc32"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/ctlog"
)

func TestCheckpointGoldenRoundTrip(t *testing.T) {
	at := time.Unix(1722000000, 123456789)
	cp := Checkpoint{NextIndex: 1234567, TreeSize: 2000000, UpdatedAt: at}
	buf, err := cp.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != checkpointLen {
		t.Fatalf("record is %d bytes, want %d", len(buf), checkpointLen)
	}
	// Golden prefix: the format is versioned and on disk across
	// releases — any change to these bytes must bump the version.
	golden := []byte{
		'U', 'C', 'K', 'P', // magic
		0x01, 0x00, // version 1
		0x00, 0x00, // reserved
		0x87, 0xd6, 0x12, 0x00, 0x00, 0x00, 0x00, 0x00, // next index 1234567
		0x80, 0x84, 0x1e, 0x00, 0x00, 0x00, 0x00, 0x00, // tree size 2000000
	}
	if !bytes.Equal(buf[:24], golden) {
		t.Fatalf("golden prefix mismatch:\n got %x\nwant %x", buf[:24], golden)
	}
	var back Checkpoint
	if err := back.UnmarshalBinary(buf); err != nil {
		t.Fatal(err)
	}
	if back.NextIndex != cp.NextIndex || back.TreeSize != cp.TreeSize || !back.UpdatedAt.Equal(at) {
		t.Fatalf("round trip: %+v != %+v", back, cp)
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp")
	s := &FileCheckpointStore{Path: path}

	if _, ok, err := s.Load(); err != nil || ok {
		t.Fatalf("empty store Load = ok=%v err=%v, want clean no-checkpoint", ok, err)
	}
	want := Checkpoint{NextIndex: 42, TreeSize: 100, UpdatedAt: time.Unix(5, 0)}
	if err := s.Save(want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Load()
	if err != nil || !ok {
		t.Fatalf("Load = ok=%v err=%v", ok, err)
	}
	if got.NextIndex != 42 || got.TreeSize != 100 {
		t.Fatalf("got %+v", got)
	}
	// Save replaces, atomically: no stray temp files remain.
	if err := s.Save(Checkpoint{NextIndex: 43, TreeSize: 100}); err != nil {
		t.Fatal(err)
	}
	got, ok, _ = s.Load()
	if !ok || got.NextIndex != 43 {
		t.Fatalf("after overwrite: ok=%v %+v", ok, got)
	}
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory holds %d files, want just the checkpoint", len(ents))
	}
}

// TestCheckpointTornWrites is the satellite acceptance test: truncate
// a valid checkpoint file at EVERY byte offset; each truncation must
// load as a clean "no checkpoint" — never a wrong index, never a
// panic.
func TestCheckpointTornWrites(t *testing.T) {
	full, err := Checkpoint{NextIndex: 9999, TreeSize: 12345, UpdatedAt: time.Unix(99, 0)}.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for cut := 0; cut < len(full); cut++ {
		path := filepath.Join(dir, "cp")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s := &FileCheckpointStore{Path: path}
		cp, ok, err := s.Load()
		if err != nil {
			t.Fatalf("cut at %d: err = %v, want clean no-checkpoint", cut, err)
		}
		if ok {
			t.Fatalf("cut at %d: loaded %+v from a torn record", cut, cp)
		}
	}
	// The untruncated record still loads.
	path := filepath.Join(dir, "cp")
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	cp, ok, err := (&FileCheckpointStore{Path: path}).Load()
	if err != nil || !ok || cp.NextIndex != 9999 {
		t.Fatalf("full record: ok=%v err=%v cp=%+v", ok, err, cp)
	}
}

// TestCheckpointBitFlips seals the CRC: flipping any single bit of a
// valid record must invalidate it.
func TestCheckpointBitFlips(t *testing.T) {
	full, err := Checkpoint{NextIndex: 777, TreeSize: 888, UpdatedAt: time.Unix(9, 9)}.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for byteIdx := 0; byteIdx < len(full); byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), full...)
			mut[byteIdx] ^= 1 << bit
			var cp Checkpoint
			if err := cp.UnmarshalBinary(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d went undetected: %+v", byteIdx, bit, cp)
			}
		}
	}
}

func TestCheckpointUnknownVersion(t *testing.T) {
	full, err := Checkpoint{NextIndex: 1}.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// A future version with a correct CRC must still be refused by this
	// reader (it cannot know the format), not misread.
	full[4] = 2
	reseal(full)
	var cp Checkpoint
	if err := cp.UnmarshalBinary(full); err == nil {
		t.Fatal("unknown version accepted")
	}
	path := filepath.Join(t.TempDir(), "cp")
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := (&FileCheckpointStore{Path: path}).Load(); err != nil || ok {
		t.Fatalf("unknown version: ok=%v err=%v, want clean no-checkpoint", ok, err)
	}
}

func TestCheckpointNegativeFieldsRejected(t *testing.T) {
	if _, err := (Checkpoint{NextIndex: -1}).MarshalBinary(); err == nil {
		t.Fatal("negative NextIndex accepted")
	}
}

// TestSyncPersistsAndResumesCheckpoint is the crash-recovery
// integration test: a crawl killed mid-sync leaves a durable
// checkpoint; a FRESH monitor in a fresh "process" resumes from it
// without refetching a single already-handled entry, and total
// accounting matches a never-killed run.
func TestSyncPersistsAndResumesCheckpoint(t *testing.T) {
	const total = 300
	log, precerts := chaosLog(t, 7, total, 10)
	counter := &countingHandler{inner: (&ctlog.Server{Log: log}).Handler()}
	srv := httptest.NewServer(counter)
	defer srv.Close()

	path := filepath.Join(t.TempDir(), "cp")
	store := &FileCheckpointStore{Path: path}

	// Run 1: cancel the crawl partway by cutting the context after the
	// first batches; the monitor dies with the process (new Monitor in
	// run 2), only the file survives.
	ctx, cancel := context.WithCancel(context.Background())
	m1 := New(Monitors()[0])
	fetchedBeforeKill := 0
	client1 := fastChaosClient(srv.URL, nil)
	opts := SyncOptions{Batch: 32, Checkpoints: store}
	// Cancel after ~3 batches by watching get-entries traffic.
	go func() {
		for counter.getEntries.Load() < 3 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	stats1, err := m1.SyncFromLog(ctx, client1, opts)
	if err == nil {
		// The race can finish the crawl first on a fast machine; then
		// there is nothing to resume — re-run with an immediate cut.
		t.Skip("crawl finished before the kill; nothing to assert")
	}
	fetchedBeforeKill = stats1.Fetched
	if fetchedBeforeKill == 0 {
		t.Fatalf("kill landed before any progress: %+v", stats1)
	}
	cp, ok, err := store.Load()
	if err != nil || !ok {
		t.Fatalf("no durable checkpoint after kill: ok=%v err=%v", ok, err)
	}
	if cp.NextIndex != m1.Checkpoint() {
		t.Fatalf("durable checkpoint %d != in-memory %d", cp.NextIndex, m1.Checkpoint())
	}

	// Run 2: fresh monitor, fresh client, same store — the "restarted
	// process".
	refetchBase := counter.getEntries.Load()
	m2 := New(Monitors()[0])
	stats2, err := m2.SyncFromLog(context.Background(), fastChaosClient(srv.URL, nil), opts)
	if err != nil {
		t.Fatalf("resumed crawl failed: %v", err)
	}
	if stats2.ResumedFrom != cp.NextIndex || stats2.ResumedFrom == 0 {
		t.Fatalf("ResumedFrom = %d, want checkpoint %d", stats2.ResumedFrom, cp.NextIndex)
	}
	if m2.Checkpoint() != total {
		t.Fatalf("resumed crawl checkpoint %d, want %d", m2.Checkpoint(), total)
	}
	// Exact accounting: the two runs together fetched each entry once.
	if got := stats1.Fetched + stats2.Fetched; got != total {
		t.Fatalf("fetched %d + %d = %d, want exactly %d (no refetch)", stats1.Fetched, stats2.Fetched, got, total)
	}
	if got := stats1.Precerts + stats2.Precerts; got != precerts {
		t.Fatalf("precerts %d, want %d", got, precerts)
	}
	// And the resumed run's request window starts at the checkpoint:
	// enough batches for the remaining range, not the whole log.
	remaining := total - stats2.ResumedFrom
	maxBatches := int64(remaining/32 + 2)
	if used := counter.getEntries.Load() - refetchBase; used > maxBatches {
		t.Fatalf("resumed crawl issued %d get-entries, want <= %d (refetching?)", used, maxBatches)
	}
	// Final checkpoint on disk is the head.
	cp, ok, _ = store.Load()
	if !ok || cp.NextIndex != total || cp.TreeSize != total {
		t.Fatalf("final checkpoint %+v ok=%v", cp, ok)
	}
}

// TestSyncCheckpointSaveFailureDegrades: a store that cannot write
// must not abort the crawl — only CheckpointErrors accumulates.
func TestSyncCheckpointSaveFailureDegrades(t *testing.T) {
	const total = 64
	log, _ := chaosLog(t, 3, total, 0)
	srv := httptest.NewServer((&ctlog.Server{Log: log}).Handler())
	defer srv.Close()

	store := &FileCheckpointStore{Path: filepath.Join(t.TempDir(), "no", "such", "dir", "cp")}
	m := New(Monitors()[0])
	stats, err := m.SyncFromLog(context.Background(), fastChaosClient(srv.URL, nil), SyncOptions{Batch: 16, Checkpoints: store})
	if err != nil {
		t.Fatalf("crawl aborted on checkpoint failure: %v", err)
	}
	if stats.CheckpointErrors == 0 {
		t.Fatal("CheckpointErrors = 0, want failed saves counted")
	}
	if m.Checkpoint() != total {
		t.Fatalf("checkpoint %d, want %d", m.Checkpoint(), total)
	}
}

// TestSyncInMemoryProgressWins: a monitor that already has in-memory
// progress must not be rewound by an older persisted checkpoint.
func TestSyncInMemoryProgressWins(t *testing.T) {
	const total = 50
	log, _ := chaosLog(t, 11, total, 0)
	srv := httptest.NewServer((&ctlog.Server{Log: log}).Handler())
	defer srv.Close()

	path := filepath.Join(t.TempDir(), "cp")
	store := &FileCheckpointStore{Path: path}
	if err := store.Save(Checkpoint{NextIndex: 5, TreeSize: total}); err != nil {
		t.Fatal(err)
	}
	m := New(Monitors()[0])
	m.SetCheckpoint(30)
	stats, err := m.SyncFromLog(context.Background(), fastChaosClient(srv.URL, nil), SyncOptions{Batch: 16, Checkpoints: store})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ResumedFrom != 30 {
		t.Fatalf("ResumedFrom = %d, want the in-memory 30", stats.ResumedFrom)
	}
	if stats.Fetched != total-30 {
		t.Fatalf("fetched %d, want %d", stats.Fetched, total-30)
	}
}

// reseal recomputes a record's CRC after a deliberate mutation.
func reseal(buf []byte) {
	c := crc32.ChecksumIEEE(buf[:32])
	buf[32] = byte(c)
	buf[33] = byte(c >> 8)
	buf[34] = byte(c >> 16)
	buf[35] = byte(c >> 24)
}

// TestLockedCheckpointStoreCollision pins the fleet's fail-fast
// guarantee: two workers accidentally configured with the same
// checkpoint path must collide at acquisition time, not silently
// interleave saves.
func TestLockedCheckpointStoreCollision(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.ckpt")
	first, err := AcquireFileCheckpointStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AcquireFileCheckpointStore(path); !errors.Is(err, ErrCheckpointLocked) {
		t.Fatalf("second acquire: err = %v, want ErrCheckpointLocked", err)
	}
	// The holder still works as a normal store through the lock.
	if err := first.Save(Checkpoint{NextIndex: 42, TreeSize: 100, UpdatedAt: time.Now()}); err != nil {
		t.Fatal(err)
	}
	if cp, ok, err := first.Load(); err != nil || !ok || cp.NextIndex != 42 {
		t.Fatalf("Load through locked store: cp=%+v ok=%v err=%v", cp, ok, err)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	// Release makes the path acquirable again, and the durable
	// checkpoint survives the lock cycle.
	second, err := AcquireFileCheckpointStore(path)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	defer second.Close()
	if cp, ok, err := second.Load(); err != nil || !ok || cp.NextIndex != 42 {
		t.Fatalf("checkpoint lost across lock cycle: cp=%+v ok=%v err=%v", cp, ok, err)
	}
	// Double-close is safe.
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLockedCheckpointStoreDistinctPaths: locks are per path — two
// stores on different files coexist.
func TestLockedCheckpointStoreDistinctPaths(t *testing.T) {
	dir := t.TempDir()
	a, err := AcquireFileCheckpointStore(filepath.Join(dir, "a.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := AcquireFileCheckpointStore(filepath.Join(dir, "b.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
}
