package monitor

// Audit-mode chaos tests: the Merkle-audited crawl against clean logs,
// damaged transports, and actively lying logs. The contract under
// test: every claimed entry is proof-verified (Audited == Fetched −
// SkippedEntries, and audit mode never skips), transient proof damage
// heals through refetch, and a log caught equivocating or hiding an
// entry aborts the crawl with ErrProofFailure plus the full incident
// trail (stats, metrics, journal, flight dump).

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/ctlog"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

func TestAuditCleanCrawl(t *testing.T) {
	const total = 130
	log, _ := chaosLog(t, 83, total, 10)
	srv := httptest.NewServer((&ctlog.Server{Log: log}).Handler())
	defer srv.Close()

	reg := obs.NewRegistry()
	client := fastChaosClient(srv.URL, nil)
	m := New(Monitors()[0])
	stats, err := m.SyncFromLog(context.Background(), client, SyncOptions{Batch: 32, Audit: true, Obs: reg})
	if err != nil {
		t.Fatalf("clean audited crawl failed: %v", err)
	}
	if stats.Fetched != total || stats.Audited != total || stats.ProofFailures != 0 || stats.SkippedEntries != 0 {
		t.Fatalf("clean crawl accounting: %+v, want fetched=audited=%d with zero failures", stats, total)
	}
	if got := reg.Counter("monitor_entries_audited_total").Value(); int(got) != total {
		t.Fatalf("monitor_entries_audited_total = %d, want %d", got, total)
	}
	// The verified mirror tracks the checkpoint exactly, at the log's
	// real root.
	if m.audit == nil || m.audit.tree.Size() != total {
		t.Fatalf("audit mirror size %d, want %d", m.audit.tree.Size(), total)
	}
	sth, err := log.STH()
	if err != nil {
		t.Fatal(err)
	}
	if m.audit.tree.Root() != sth.Root {
		t.Fatal("audit mirror root diverges from the log's STH root")
	}

	// A repeat crawl is a verified no-op.
	stats2, err := m.SyncFromLog(context.Background(), client, SyncOptions{Batch: 32, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Fetched != 0 || stats2.Audited != 0 || stats2.ProofFailures != 0 {
		t.Fatalf("repeat crawl should verify and fetch nothing: %+v", stats2)
	}
}

// TestAuditChaosCrawl is the audited acceptance scenario: transport
// chaos (5xx, drops, truncation, corrupt JSON) *plus* per-request
// proof tampering, and the crawl must still finish with every entry
// verified — transient damage heals, accounting stays exact.
func TestAuditChaosCrawl(t *testing.T) {
	const total = 300
	log, _ := chaosLog(t, 89, total, 8)
	srv := httptest.NewServer((&ctlog.Server{Log: log}).Handler())
	defer srv.Close()

	injector := faultinject.New(faultinject.Config{
		Seed: 23,
		Rate: 0.25,
		Kinds: []faultinject.Kind{
			faultinject.ServerError,
			faultinject.Drop,
			faultinject.Truncate,
			faultinject.CorruptJSON,
			faultinject.ProofTamper,
		},
	}, nil)
	client := fastChaosClient(srv.URL, injector)
	m := New(Monitors()[0])
	stats, err := m.SyncFromLog(context.Background(), client, SyncOptions{Batch: 24, Audit: true})
	if err != nil {
		t.Fatalf("audited crawl did not survive the chaos: %v\nstats %+v\ninjector %+v", err, stats, injector.Stats())
	}
	if stats.Audited != stats.Fetched-stats.SkippedEntries {
		t.Fatalf("audit contract broken: audited %d != fetched %d - skipped %d", stats.Audited, stats.Fetched, stats.SkippedEntries)
	}
	if stats.Fetched != total || stats.Audited != total || stats.ProofFailures != 0 {
		t.Fatalf("chaos crawl accounting: %+v, want fetched=audited=%d", stats, total)
	}
	if m.Checkpoint() != total || m.audit.tree.Size() != total {
		t.Fatalf("checkpoint %d / mirror %d, want %d/%d", m.Checkpoint(), m.audit.tree.Size(), total, total)
	}
}

// TestAuditProofTamperHeals isolates the proof-tampering fault at a
// high rate: the consistency check fails, the crawl falls back to
// per-entry inclusion proofs, those heal through refetch (the injector
// caps consecutive faults), and no incident is declared.
func TestAuditProofTamperHeals(t *testing.T) {
	const total = 64
	log, _ := chaosLog(t, 97, total, 0)
	srv := httptest.NewServer((&ctlog.Server{Log: log}).Handler())
	defer srv.Close()

	injector := faultinject.New(faultinject.Config{
		Seed:           31,
		Rate:           0.9,
		Kinds:          []faultinject.Kind{faultinject.ProofTamper},
		MaxConsecutive: 2,
	}, nil)
	client := fastChaosClient(srv.URL, injector)
	m := New(Monitors()[0])
	stats, err := m.SyncFromLog(context.Background(), client, SyncOptions{Batch: 16, Audit: true})
	if err != nil {
		t.Fatalf("tampered proofs should heal, not abort: %v (injector %+v)", err, injector.Stats())
	}
	if stats.Audited != total || stats.ProofFailures != 0 {
		t.Fatalf("healing crawl accounting: %+v", stats)
	}
	if injector.Stats().Faults[faultinject.ProofTamper] == 0 {
		t.Fatal("test exercised nothing: no proofs were tampered")
	}
}

// TestAuditStaleSTHTolerated: a lagging-but-honest head is consistent
// with the verified mirror, so audit mode treats it like the plain
// crawl does — finish early, catch up later, never an incident.
func TestAuditStaleSTHTolerated(t *testing.T) {
	const phase1, total = 40, 80
	log, _ := chaosLog(t, 101, phase1, 0)
	srv := httptest.NewServer((&ctlog.Server{Log: log}).Handler())
	defer srv.Close()

	injector := faultinject.New(faultinject.Config{
		Seed:  13,
		Rate:  0.5,
		Kinds: []faultinject.Kind{faultinject.StaleSTH},
	}, nil)
	client := fastChaosClient(srv.URL, injector)
	ctx := context.Background()
	if _, _, err := client.GetSTH(ctx); err != nil { // prime the stale cache
		t.Fatal(err)
	}
	c := cert(t, "late.example", "late.example")
	for i := phase1; i < total; i++ {
		if _, err := log.AddParsed(c.Raw, false); err != nil {
			t.Fatal(err)
		}
	}

	m := New(Monitors()[0])
	audited := 0
	for round := 0; round < 20 && m.Checkpoint() < total; round++ {
		stats, err := m.SyncFromLog(ctx, client, SyncOptions{Batch: 16, Audit: true})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if stats.ProofFailures != 0 {
			t.Fatalf("stale head booked as incident: %+v", stats)
		}
		audited += stats.Audited
	}
	if m.Checkpoint() != total || audited != total {
		t.Fatalf("checkpoint %d, audited %d across rounds, want %d/%d", m.Checkpoint(), audited, total, total)
	}
}

// TestAuditEquivocationDetected is the split-view scenario: the crawl
// verifies the log once, then the log starts serving a same-size STH
// with a different root. The crawl must abort with ErrProofFailure and
// leave the full incident trail.
func TestAuditEquivocationDetected(t *testing.T) {
	const total = 50
	log, _ := chaosLog(t, 103, total, 0)
	srv := httptest.NewServer((&ctlog.Server{Log: log}).Handler())
	defer srv.Close()

	ctx := context.Background()
	m := New(Monitors()[0])
	if _, err := m.SyncFromLog(ctx, fastChaosClient(srv.URL, nil), SyncOptions{Batch: 16, Audit: true}); err != nil {
		t.Fatalf("phase 1 (honest log): %v", err)
	}

	// Phase 2: every STH response has its root flipped — an
	// equivocating log presenting this monitor a forked view.
	injector := faultinject.New(faultinject.Config{
		Seed:  3,
		Rate:  1.0,
		Kinds: []faultinject.Kind{faultinject.SthEquivocate},
	}, nil)
	var buf bytes.Buffer
	dir := t.TempDir()
	flight := obs.NewFlight(dir, 64, nil)
	reg := obs.NewRegistry()
	stats, err := m.SyncFromLog(ctx, fastChaosClient(srv.URL, injector), SyncOptions{
		Batch: 16, Audit: true, Name: "fork",
		Journal: obs.NewJournal(&buf, nil),
		Flight:  flight,
		Obs:     reg,
	})
	if err == nil {
		t.Fatalf("equivocating log accepted: %+v", stats)
	}
	if !errors.Is(err, ErrProofFailure) {
		t.Fatalf("equivocation error does not wrap ErrProofFailure: %v", err)
	}
	if stats.ProofFailures != 1 || stats.Fetched != 0 {
		t.Fatalf("equivocation stats: %+v, want 1 proof failure and nothing fetched", stats)
	}
	if got := reg.Counter("monitor_proof_failures_total", "kind", ProofFailConsistency).Value(); got != 1 {
		t.Fatalf("monitor_proof_failures_total{kind=consistency} = %d, want 1", got)
	}

	events, err := obs.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var incident *obs.JournalEvent
	var end *obs.JournalEvent
	for i, ev := range events {
		switch ev.Type {
		case "monitor.proof_failure":
			incident = &events[i]
		case "monitor.sync.end":
			end = &events[i]
		}
	}
	if incident == nil {
		t.Fatal("no monitor.proof_failure journal event")
	}
	if kind, _ := incident.Attrs["kind"].(string); kind != ProofFailConsistency {
		t.Fatalf("incident kind %q, want consistency", kind)
	}
	if name, _ := incident.Attrs["log"].(string); name != "fork" {
		t.Fatalf("incident names log %q, want fork", name)
	}
	if end == nil {
		t.Fatal("no monitor.sync.end despite the abort")
	}
	if pf, _ := end.Attrs["proof_failures"].(float64); int(pf) != 1 {
		t.Fatalf("sync.end proof_failures = %v, want 1", end.Attrs["proof_failures"])
	}
	if interrupted, _ := end.Attrs["interrupted"].(bool); !interrupted {
		t.Fatal("sync.end not marked interrupted")
	}
	dumps, err := filepath.Glob(filepath.Join(dir, "flight-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) == 0 {
		t.Fatal("proof failure left no flight-recorder dump")
	}
}

// TestAuditRollbackToEmptyDetected: a head that shrinks to zero after
// entries were verified is never "stale", it is a rollback.
func TestAuditRollbackToEmptyDetected(t *testing.T) {
	const total = 20
	log, _ := chaosLog(t, 107, total, 0)
	inner := (&ctlog.Server{Log: log}).Handler()
	var rollback atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if rollback.Load() && r.URL.Path == "/ct/v1/get-sth" {
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"tree_size":0,"sha256_root_hash":"47DEQpj8HBSa+/TImW+5JCeuQeRkm5NMpJWZG3hSuFU="}`))
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	ctx := context.Background()
	client := fastChaosClient(srv.URL, nil)
	m := New(Monitors()[0])
	if _, err := m.SyncFromLog(ctx, client, SyncOptions{Batch: 8, Audit: true}); err != nil {
		t.Fatal(err)
	}
	rollback.Store(true)
	stats, err := m.SyncFromLog(ctx, client, SyncOptions{Batch: 8, Audit: true})
	if !errors.Is(err, ErrProofFailure) || stats.ProofFailures != 1 {
		t.Fatalf("rollback to empty tree: err=%v stats=%+v, want a consistency incident", err, stats)
	}
}

// TestAuditPoisonedEntryIsHole: with auditing on, a persistently
// unfetchable entry cannot be skipped — the tree cannot be verified
// past a hole — so the crawl stops exactly there with a hole incident,
// and every entry before the hole is still claimed and verified.
func TestAuditPoisonedEntryIsHole(t *testing.T) {
	const total, poisoned = 40, 17
	log, _ := chaosLog(t, 109, total, 0)
	srv := httptest.NewServer((&ctlog.Server{Log: log}).Handler())
	defer srv.Close()

	injector := faultinject.New(faultinject.Config{
		Seed:          19,
		PoisonEntries: map[int]bool{poisoned: true},
	}, nil)
	client := fastChaosClient(srv.URL, injector)
	m := New(Monitors()[0])
	stats, err := m.SyncFromLog(context.Background(), client, SyncOptions{Batch: 8, Audit: true})
	if !errors.Is(err, ErrProofFailure) {
		t.Fatalf("poisoned entry under audit: err=%v, want ErrProofFailure", err)
	}
	if stats.ProofFailures != 1 || stats.SkippedEntries != 0 {
		t.Fatalf("hole stats: %+v, want 1 proof failure and no skips", stats)
	}
	// Exact accounting up to the hole: everything before it is claimed
	// and verified, nothing past it.
	if stats.Fetched != poisoned || stats.Audited != poisoned {
		t.Fatalf("fetched %d audited %d, want both %d (entries before the hole)", stats.Fetched, stats.Audited, poisoned)
	}
	if m.Checkpoint() != poisoned || m.audit.tree.Size() != poisoned {
		t.Fatalf("checkpoint %d mirror %d, want both %d", m.Checkpoint(), m.audit.tree.Size(), poisoned)
	}
}

// TestAuditResumeReanchors exercises the restart paths: a killed
// process resumes from its persisted anchor without refetching, and a
// lost anchor forces a re-anchor refetch that re-verifies the gap.
func TestAuditResumeReanchors(t *testing.T) {
	const phase1, total = 60, 90
	log, _ := chaosLog(t, 113, phase1, 0)
	srv := httptest.NewServer((&ctlog.Server{Log: log}).Handler())
	defer srv.Close()

	dir := t.TempDir()
	ctx := context.Background()
	client := fastChaosClient(srv.URL, nil)
	newOpts := func(buf *bytes.Buffer) SyncOptions {
		return SyncOptions{
			Batch: 16, Audit: true, Name: "resume",
			STHStore:    &FileSTHStore{Path: filepath.Join(dir, "resume.sth")},
			Checkpoints: &FileCheckpointStore{Path: filepath.Join(dir, "resume.ckpt")},
			Journal:     obs.NewJournal(buf, nil),
		}
	}

	// Process 1 crawls and dies (goes away).
	if _, err := New(Monitors()[0]).SyncFromLog(ctx, client, newOpts(&bytes.Buffer{})); err != nil {
		t.Fatal(err)
	}

	// The log grows; process 2 resumes on the persisted anchor.
	c := cert(t, "resume.example", "resume.example")
	for i := phase1; i < total; i++ {
		if _, err := log.AddParsed(c.Raw, false); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	m2 := New(Monitors()[0])
	stats, err := m2.SyncFromLog(ctx, client, newOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if stats.ResumedFrom != phase1 || stats.Fetched != total-phase1 || stats.Audited != total-phase1 {
		t.Fatalf("resumed crawl: %+v, want resume from %d fetching %d", stats, phase1, total-phase1)
	}
	events, err := obs.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	anchored := false
	for _, ev := range events {
		if ev.Type == "monitor.audit.anchor" {
			anchored = true
			if size, _ := ev.Attrs["size"].(float64); int(size) != phase1 {
				t.Fatalf("anchor restored at size %v, want %d", ev.Attrs["size"], phase1)
			}
		}
	}
	if !anchored {
		t.Fatal("resume emitted no monitor.audit.anchor event")
	}

	// Process 3 starts with the checkpoint intact but the anchor gone:
	// the crawl must re-anchor at the verified head (zero here) and
	// re-verify everything rather than trust unproven progress.
	if err := os.Remove(filepath.Join(dir, "resume.sth")); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	m3 := New(Monitors()[0])
	stats3, err := m3.SyncFromLog(ctx, client, newOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if stats3.Fetched != total || stats3.Audited != total {
		t.Fatalf("re-anchored crawl: %+v, want full refetch of %d", stats3, total)
	}
	events, err = obs.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	reanchored := false
	for _, ev := range events {
		if ev.Type == "monitor.audit.reanchor" {
			reanchored = true
			from, _ := ev.Attrs["from"].(float64)
			to, _ := ev.Attrs["to"].(float64)
			if int(from) != total || int(to) != 0 {
				t.Fatalf("reanchor from %v to %v, want %d to 0", from, to, total)
			}
		}
	}
	if !reanchored {
		t.Fatal("lost anchor produced no monitor.audit.reanchor event")
	}
	if m3.Checkpoint() != total || m3.audit.tree.Size() != total {
		t.Fatalf("after re-anchor: checkpoint %d mirror %d, want %d", m3.Checkpoint(), m3.audit.tree.Size(), total)
	}
}
