package monitor

// Merkle auditing for the crawl. With SyncOptions.Audit set, the
// monitor stops trusting get-entries: it mirrors the log's Merkle
// tree in a compact range and proves every batch against the signed
// tree head before anything reaches a sink or the index.
//
// The verification is amortized. Each fetched batch extends a
// *tentative* copy of the mirror, and one consistency proof
// (batch-end size → STH size) authenticates the entire prefix — every
// leaf fetched so far — against the STH root in O(log n) hashes. Only
// when that check fails does the crawl fall back to per-entry
// inclusion proofs, which either pinpoint the tampered entries or
// heal a transiently corrupted proof. Every STH advance is itself
// checked with a consistency proof against the last verified head
// (persisted in the STHStore), so a log that forks its tree — serving
// this monitor a different history than the rest of the world, the
// split-view attack CT's gossip literature warns about — is detected
// at the first get-sth, even across a process restart.
//
// A proof failure is an incident, not a retry: it is counted
// (SyncStats.ProofFailures, monitor_proof_failures_total{kind}),
// journaled (monitor.proof_failure), flight-dumped, and surfaces as
// an error wrapping ErrProofFailure, which supervisors treat as
// terminal — a log caught lying is distrusted, not restarted.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/ctlog"
)

// ErrProofFailure marks a crawl abort caused by Merkle proof
// verification failing (or an entry the tree cannot be verified
// past). Callers use errors.Is to distinguish "the log is lying" from
// "the log is down": the former must not be retried into acceptance.
var ErrProofFailure = errors.New("monitor: merkle proof verification failed")

// Proof-failure kinds, the label values of
// monitor_proof_failures_total{kind}.
const (
	// ProofFailInclusion: an entry's inclusion proof did not verify
	// against the STH (or the log claims not to have the leaf).
	ProofFailInclusion = "inclusion"
	// ProofFailConsistency: a consistency proof did not connect two
	// tree heads — the split-view/equivocation signal.
	ProofFailConsistency = "consistency"
	// ProofFailHole: an entry was persistently unfetchable, so the
	// tree cannot be verified past it; without auditing it would have
	// been skipped.
	ProofFailHole = "hole"
)

// auditor is a monitor's audit state. It lives on the Monitor (not
// the crawl) so in-process supervisor restarts keep the verified
// mirror; across processes the STHStore restores it.
type auditor struct {
	// tree mirrors the verified prefix of the log: exactly the leaves
	// the crawl has claimed, appended in lockstep with the checkpoint.
	tree *ctlog.CompactTree
	// crawlSize/crawlRoot are the STH the current crawl verifies
	// against; set by auditSTHAdvance at crawl start.
	crawlSize int
	crawlRoot ctlog.Hash
	// lastSaved is the last tree size persisted to the STHStore.
	lastSaved int
}

// ensureAudit initializes the audit state once per monitor, restoring
// the persisted anchor when one exists.
func (m *Monitor) ensureAudit(ctx context.Context, opts *SyncOptions) error {
	if m.audit != nil {
		return nil
	}
	a := &auditor{lastSaved: -1}
	if opts.STHStore != nil {
		v, ok, err := opts.STHStore.Load()
		if err != nil {
			return fmt.Errorf("monitor: loading STH store: %w", err)
		}
		if ok {
			t, err := ctlog.NewCompactTree(v.Size, v.Hashes)
			if err == nil && t.Root() == v.Root {
				a.tree = t
				a.lastSaved = v.Size
				opts.Journal.Emit(ctx, "monitor.audit.anchor", map[string]any{
					"log": opts.Name, "size": v.Size,
				})
			}
		}
	}
	if a.tree == nil {
		a.tree = &ctlog.CompactTree{}
	}
	m.audit = a
	return nil
}

// proofFailure books one proof-failure incident — accounting, journal
// event, flight dump — and returns the terminal error.
func (m *Monitor) proofFailure(ctx context.Context, kind string, index int, detail string, stats *SyncStats, sm *syncMetrics, opts *SyncOptions) error {
	stats.ProofFailures++
	sm.proofFailed(kind)
	opts.Journal.Emit(ctx, "monitor.proof_failure", map[string]any{
		"log": opts.Name, "kind": kind, "index": index, "detail": detail,
	})
	sm.ring.Record("proof-failure", opts.Name, int64(index), 0)
	// The moments before a proof failure are exactly what forensics
	// needs; a dump failure must not mask the incident itself.
	_, _ = opts.Flight.Trigger("proof-failure")
	return fmt.Errorf("monitor: %s proof failure (%s, index %d): %w", kind, detail, index, ErrProofFailure)
}

// auditSTHAdvance checks a freshly fetched STH against the verified
// tree head before the crawl trusts it. Equal sizes must carry equal
// roots (anything else is a split view); a larger head must prove
// consistency with ours; a smaller head is tolerated only if it *is*
// a consistent prefix of what we already verified (a stale cache),
// never a rollback.
func (m *Monitor) auditSTHAdvance(ctx context.Context, client *ctlog.Client, size int, root ctlog.Hash, stats *SyncStats, sm *syncMetrics, opts *SyncOptions) error {
	a := m.audit
	a.crawlSize, a.crawlRoot = size, root
	s0 := a.tree.Size()
	if s0 == 0 {
		return nil // nothing verified yet; the first batches anchor us
	}
	r0 := a.tree.Root()
	switch {
	case size == s0:
		if root == r0 {
			return nil
		}
		return m.proofFailure(ctx, ProofFailConsistency, size, "split view: same tree size, different root", stats, sm, opts)
	case size > s0:
		for attempt := 0; attempt <= opts.proofRetries(); attempt++ {
			proof, err := client.GetConsistency(ctx, s0, size)
			if err != nil {
				if ctx.Err() != nil || ctlog.IsRetryable(err) {
					return fmt.Errorf("monitor: get-sth-consistency [%d,%d]: %w", s0, size, err)
				}
				continue // deterministic per-request damage can heal on refetch
			}
			if ctlog.VerifyConsistency(s0, size, r0, root, proof) {
				return nil
			}
		}
		return m.proofFailure(ctx, ProofFailConsistency, size, "STH does not extend the verified tree head", stats, sm, opts)
	default: // size < s0
		if size == 0 {
			return m.proofFailure(ctx, ProofFailConsistency, size, "STH rolled back to an empty tree", stats, sm, opts)
		}
		for attempt := 0; attempt <= opts.proofRetries(); attempt++ {
			proof, err := client.GetConsistency(ctx, size, s0)
			if err != nil {
				if ctx.Err() != nil || ctlog.IsRetryable(err) {
					return fmt.Errorf("monitor: get-sth-consistency [%d,%d]: %w", size, s0, err)
				}
				continue
			}
			if ctlog.VerifyConsistency(size, s0, root, r0, proof) {
				return nil // stale but consistent head; the crawl is a no-op
			}
		}
		return m.proofFailure(ctx, ProofFailConsistency, size, "STH is behind the verified head and not a prefix of it", stats, sm, opts)
	}
}

// auditBatch verifies one fetched batch before ingest may claim it.
// New entries extend a tentative copy of the mirror and one
// consistency proof authenticates the extended prefix against the
// STH; refetched entries already inside the mirror (a crash window
// artifact) are re-proven individually, since their bytes may differ
// from what was verified. The real mirror is NOT advanced here —
// ingest appends leaves in lockstep with the checkpoint, so every
// abort point keeps tree and checkpoint equal.
func (m *Monitor) auditBatch(ctx context.Context, client *ctlog.Client, entries []ctlog.Entry, stats *SyncStats, sm *syncMetrics, opts *SyncOptions) error {
	a := m.audit
	tent := a.tree.Clone()
	for _, e := range entries {
		if e.Index < m.nextIndex {
			continue // ingest drops it too
		}
		if e.Index < tent.Size() {
			if err := m.auditEntry(ctx, client, e.Index, ctlog.LeafHash(e.DER), stats, sm, opts); err != nil {
				return err
			}
			continue
		}
		if e.Index != tent.Size() {
			return fmt.Errorf("monitor: entry %d leaves a gap in the audit mirror at %d", e.Index, tent.Size())
		}
		tent.Append(ctlog.LeafHash(e.DER))
	}
	s, n := tent.Size(), a.crawlSize
	if s == a.tree.Size() {
		return nil // nothing new to prove
	}
	if s > n {
		return m.proofFailure(ctx, ProofFailConsistency, s-1, fmt.Sprintf("log served entries beyond its STH of size %d", n), stats, sm, opts)
	}
	root := tent.Root()
	if s == n {
		if root == a.crawlRoot {
			return nil
		}
	} else {
		for attempt := 0; attempt <= opts.proofRetries(); attempt++ {
			proof, err := client.GetConsistency(ctx, s, n)
			if err != nil {
				if ctx.Err() != nil || ctlog.IsRetryable(err) {
					return fmt.Errorf("monitor: get-sth-consistency [%d,%d]: %w", s, n, err)
				}
				continue
			}
			if ctlog.VerifyConsistency(s, n, root, a.crawlRoot, proof) {
				return nil
			}
		}
	}
	// The batch root did not connect to the STH. Per-entry inclusion
	// proofs now either pinpoint the tampered entries or demonstrate
	// the batch was fine all along (the proofs, not the entries, were
	// damaged in transit).
	for _, e := range entries {
		if e.Index < m.nextIndex || e.Index < a.tree.Size() {
			continue
		}
		if err := m.auditEntry(ctx, client, e.Index, ctlog.LeafHash(e.DER), stats, sm, opts); err != nil {
			return err
		}
	}
	return nil
}

// auditEntry proves one leaf's inclusion at one index under the
// crawl's STH, retrying the proof fetch a few times (per-request
// tampering heals; a lying log does not).
func (m *Monitor) auditEntry(ctx context.Context, client *ctlog.Client, index int, leaf ctlog.Hash, stats *SyncStats, sm *syncMetrics, opts *SyncOptions) error {
	a := m.audit
	for attempt := 0; attempt <= opts.proofRetries(); attempt++ {
		idx, proof, err := client.GetProofByHash(ctx, leaf, a.crawlSize)
		if err != nil {
			if ctx.Err() != nil || ctlog.IsRetryable(err) {
				return fmt.Errorf("monitor: get-proof-by-hash(%d): %w", index, err)
			}
			continue // 404 or malformed proof: retry, then judge
		}
		if idx == index && ctlog.VerifyInclusion(leaf, idx, a.crawlSize, proof, a.crawlRoot) {
			return nil
		}
	}
	return m.proofFailure(ctx, ProofFailInclusion, index, "inclusion proof did not verify against the STH", stats, sm, opts)
}
