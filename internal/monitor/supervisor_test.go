package monitor

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/ctlog"
	"repro/internal/obs"
)

func noSleep(context.Context, time.Duration) error { return nil }

func TestSuperviseSucceedsFirstTry(t *testing.T) {
	calls := 0
	err := Supervise(context.Background(), SupervisorOptions{Sleep: noSleep}, func(context.Context) error {
		calls++
		return nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestSuperviseRestartsOnError(t *testing.T) {
	calls := 0
	var attempts []int
	err := Supervise(context.Background(), SupervisorOptions{
		MaxRestarts: 10,
		Sleep:       noSleep,
		OnRestart: func(r Restart) {
			attempts = append(attempts, r.Attempt)
			if r.Panicked {
				t.Errorf("restart %d reported a panic for a plain error", r.Attempt)
			}
		},
	}, func(context.Context) error {
		calls++
		if calls < 4 {
			return errors.New("flaky")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Fatalf("calls = %d", calls)
	}
	if len(attempts) != 3 || attempts[0] != 1 || attempts[2] != 3 {
		t.Fatalf("OnRestart attempts = %v", attempts)
	}
}

// TestSuperviseReportsPanicValue pins the escalation contract the fleet
// coordinator depends on: every restart caused by a crash must surface
// the recovered panic value and the running restart count through
// OnRestart, so a flapping worker can be escalated instead of silently
// restarting forever.
func TestSuperviseReportsPanicValue(t *testing.T) {
	var restarts []Restart
	calls := 0
	err := Supervise(context.Background(), SupervisorOptions{
		MaxRestarts: 5,
		Sleep:       noSleep,
		OnRestart:   func(r Restart) { restarts = append(restarts, r) },
	}, func(context.Context) error {
		calls++
		if calls < 3 {
			panic(fmt.Sprintf("hostile entry %d", calls))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(restarts) != 2 {
		t.Fatalf("restarts = %d, want 2", len(restarts))
	}
	for i, r := range restarts {
		if r.Attempt != i+1 {
			t.Fatalf("restart %d has Attempt %d", i, r.Attempt)
		}
		if !r.Panicked {
			t.Fatalf("restart %d not marked Panicked: %+v", i, r)
		}
		want := fmt.Sprintf("hostile entry %d", i+1)
		if r.PanicValue != want {
			t.Fatalf("restart %d PanicValue = %v, want %q", i, r.PanicValue, want)
		}
		var pe *PanicError
		if !errors.As(r.Err, &pe) || pe.Value != want {
			t.Fatalf("restart %d Err = %v, want PanicError(%q)", i, r.Err, want)
		}
	}
}

func TestSuperviseRecoversPanics(t *testing.T) {
	reg := obs.NewRegistry()
	calls := 0
	err := Supervise(context.Background(), SupervisorOptions{MaxRestarts: 5, Sleep: noSleep, Obs: reg}, func(context.Context) error {
		calls++
		if calls < 3 {
			panic("hostile cert")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("supervisor did not absorb panics: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d", calls)
	}
	if got := reg.Counter("monitor_supervisor_panics_total").Value(); got != 2 {
		t.Fatalf("panics counter = %d", got)
	}
	if got := reg.Counter("monitor_supervisor_restarts_total").Value(); got != 2 {
		t.Fatalf("restarts counter = %d", got)
	}
}

func TestSuperviseBudgetExhausted(t *testing.T) {
	calls := 0
	err := Supervise(context.Background(), SupervisorOptions{MaxRestarts: 2, Sleep: noSleep}, func(context.Context) error {
		calls++
		panic("always")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	if calls != 3 { // first try + 2 restarts
		t.Fatalf("calls = %d", calls)
	}
}

func TestSuperviseHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Supervise(ctx, SupervisorOptions{MaxRestarts: 100, Sleep: noSleep}, func(context.Context) error {
		calls++
		cancel()
		return errors.New("dying run")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want no restart after cancellation", calls)
	}
}

func TestSuperviseBackoffShape(t *testing.T) {
	o := SupervisorOptions{BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second}
	want := []time.Duration{100, 200, 400, 800, 1000, 1000}
	for i, w := range want {
		if got := o.backoff(i); got != w*time.Millisecond {
			t.Fatalf("backoff(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	// Overflow-safe far out.
	if got := o.backoff(80); got != time.Second {
		t.Fatalf("backoff(80) = %v", got)
	}
}

// TestIngestQuarantinesPanickingIndex drives the per-entry
// containment: an Index step that panics (here: a monitor whose index
// map was never initialised) must quarantine that one entry and let
// the rest of the batch land.
func TestIngestQuarantinesPanickingIndex(t *testing.T) {
	der := cert(t, "quarantine.example", "quarantine.example").Raw
	broken := &Monitor{Caps: Monitors()[0]} // nil index map: Index panics
	stats := &SyncStats{}
	sm := newSyncMetrics(obs.NewRegistry(), broken)
	entries := []ctlog.Entry{
		{Index: 0, DER: der},
		{Index: 1, DER: []byte{0x00}}, // parse error, not a panic
		{Index: 2, DER: der},
	}
	if err := broken.ingest(context.Background(), entries, stats, sm, &SyncOptions{}); err != nil {
		t.Fatal(err)
	}
	if stats.Quarantined != 2 {
		t.Fatalf("Quarantined = %d, want 2", stats.Quarantined)
	}
	if stats.ParseErrors != 1 {
		t.Fatalf("ParseErrors = %d, want 1", stats.ParseErrors)
	}
	if stats.Fetched != 3 {
		t.Fatalf("Fetched = %d, want 3", stats.Fetched)
	}
	if broken.Checkpoint() != 3 {
		t.Fatalf("checkpoint %d, want 3 (quarantine must advance past the entry)", broken.Checkpoint())
	}
	if got := sm.quarantined.Value(); got != 2 {
		t.Fatalf("monitor_quarantined_entries_total = %d", got)
	}

	// A healthy monitor ingests the same batch without quarantining.
	ok := New(Monitors()[0])
	stats2 := &SyncStats{}
	if err := ok.ingest(context.Background(), entries, stats2, newSyncMetrics(nil, ok), &SyncOptions{}); err != nil {
		t.Fatal(err)
	}
	if stats2.Quarantined != 0 || stats2.Indexed != 2 {
		t.Fatalf("healthy ingest: %+v", stats2)
	}
}

func TestSuperviseDefaults(t *testing.T) {
	var o SupervisorOptions
	if o.maxRestarts() != DefaultMaxRestarts {
		t.Fatalf("maxRestarts = %d", o.maxRestarts())
	}
	o.MaxRestarts = -1
	if o.maxRestarts() != 0 {
		t.Fatal("negative MaxRestarts must disable restarts")
	}
}

// TestSuperviseTerminalErrorReturnsImmediately pins the distrust path:
// an error the Terminal classifier matches must come back on the first
// failure with zero restarts, while unmatched errors keep the normal
// restart budget.
func TestSuperviseTerminalErrorReturnsImmediately(t *testing.T) {
	terminal := fmt.Errorf("crawl aborted: %w", ErrProofFailure)
	calls, restarts := 0, 0
	err := Supervise(context.Background(), SupervisorOptions{
		MaxRestarts: 10,
		Sleep:       noSleep,
		OnRestart:   func(Restart) { restarts++ },
		Terminal:    func(err error) bool { return errors.Is(err, ErrProofFailure) },
	}, func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return terminal
	})
	if !errors.Is(err, ErrProofFailure) {
		t.Fatalf("err = %v, want the terminal error surfaced verbatim", err)
	}
	if calls != 3 || restarts != 2 {
		t.Fatalf("calls=%d restarts=%d: transient errors should restart, the terminal one should not", calls, restarts)
	}
}
