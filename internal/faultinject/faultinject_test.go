package faultinject

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// backend serves a fixed JSON body on every path, plus a get-entries
// shape and a growable get-sth.
type backend struct {
	sthSize int
}

func (b *backend) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ct/v1/get-sth", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"tree_size":%d}`, b.sthSize)
	})
	mux.HandleFunc("/ct/v1/get-entries", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"entries":[{"index":0,"leaf_input":"AAAA"},{"index":1,"leaf_input":"BBBB"}]}`)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"ok":true}`)
	})
	return mux
}

func get(t *testing.T, client *http.Client, url string) (*http.Response, []byte, error) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp, body, err
}

func TestDeterministicSequence(t *testing.T) {
	srv := httptest.NewServer((&backend{sthSize: 5}).handler())
	defer srv.Close()
	sequence := func() []string {
		tr := New(Config{Seed: 7, Rate: 0.5}, nil)
		client := &http.Client{Transport: tr}
		var out []string
		for i := 0; i < 40; i++ {
			resp, _, err := get(t, client, srv.URL+"/x")
			switch {
			case err != nil:
				out = append(out, "err")
			default:
				out = append(out, resp.Status)
			}
		}
		return out
	}
	a, b := sequence(), sequence()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestConsecutiveCapGuaranteesProgress(t *testing.T) {
	srv := httptest.NewServer((&backend{sthSize: 5}).handler())
	defer srv.Close()
	// Rate 1.0 with cap 2: every third request to a key must succeed.
	tr := New(Config{Seed: 1, Rate: 1, Kinds: []Kind{ServerError}, MaxConsecutive: 2}, nil)
	client := &http.Client{Transport: tr}
	fails := 0
	for i := 0; i < 9; i++ {
		resp, _, err := get(t, client, srv.URL+"/x")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			fails++
			continue
		}
		if fails > 2 {
			t.Fatalf("%d consecutive faults despite cap 2", fails)
		}
		fails = 0
	}
	st := tr.Stats()
	if st.Requests != 9 || st.Faults[ServerError] != 6 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDropFault(t *testing.T) {
	srv := httptest.NewServer((&backend{sthSize: 5}).handler())
	defer srv.Close()
	tr := New(Config{Seed: 1, Rate: 1, Kinds: []Kind{Drop}, MaxConsecutive: -1}, nil)
	client := &http.Client{Transport: tr}
	_, err := client.Get(srv.URL + "/x")
	if err == nil || !errors.Is(errors.Unwrap(err), ErrDropped) {
		t.Fatalf("want ErrDropped, got %v", err)
	}
}

func TestTruncateFault(t *testing.T) {
	srv := httptest.NewServer((&backend{sthSize: 5}).handler())
	defer srv.Close()
	tr := New(Config{Seed: 1, Rate: 1, Kinds: []Kind{Truncate}, MaxConsecutive: -1}, nil)
	client := &http.Client{Transport: tr}
	_, body, err := get(t, client, srv.URL+"/x")
	if err == nil {
		t.Fatalf("truncated body should error mid-read, got %q", body)
	}
	if !strings.Contains(err.Error(), "unexpected EOF") {
		t.Fatalf("want unexpected EOF, got %v", err)
	}
}

func TestCorruptJSONFault(t *testing.T) {
	srv := httptest.NewServer((&backend{sthSize: 5}).handler())
	defer srv.Close()
	tr := New(Config{Seed: 1, Rate: 1, Kinds: []Kind{CorruptJSON}, MaxConsecutive: -1}, nil)
	client := &http.Client{Transport: tr}
	resp, body, err := get(t, client, srv.URL+"/x")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("corrupt fault keeps the 200: %s", resp.Status)
	}
	var v map[string]any
	if json.Unmarshal(body, &v) == nil {
		t.Fatalf("body should no longer decode: %q", body)
	}
}

// TestStaleSTHWithoutCache verifies the degradation contract: before
// any get-sth has passed through, a StaleSTH draw serves a 503 so the
// configured fault rate still holds.
func TestStaleSTHWithoutCache(t *testing.T) {
	srv := httptest.NewServer((&backend{sthSize: 100}).handler())
	defer srv.Close()
	tr := New(Config{Seed: 1, Rate: 1, Kinds: []Kind{StaleSTH}, MaxConsecutive: -1}, nil)
	resp, _, err := get(t, &http.Client{Transport: tr}, srv.URL+"/ct/v1/get-sth")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("uncached stale-sth should degrade to 503, got %s", resp.Status)
	}
}

// TestStaleSTHReplaysCachedHead drives the full stale path: a
// pass-through get-sth primes the cache, the tree grows, and a stale
// fault replays the old head.
func TestStaleSTHReplaysCachedHead(t *testing.T) {
	b := &backend{sthSize: 3}
	srv := httptest.NewServer(b.handler())
	defer srv.Close()
	// Rate 0.5 with seed 3: find a seed whose first draw passes and
	// second faults — probe deterministically.
	for seed := int64(1); seed < 50; seed++ {
		tr := New(Config{Seed: seed, Rate: 0.5, Kinds: []Kind{StaleSTH}, MaxConsecutive: -1}, nil)
		client := &http.Client{Transport: tr}
		b.sthSize = 3
		resp1, body1, err := get(t, client, srv.URL+"/ct/v1/get-sth")
		if err != nil || resp1.StatusCode != http.StatusOK {
			continue // first draw faulted; try another seed
		}
		var sth1 struct {
			TreeSize int `json:"tree_size"`
		}
		if err := json.Unmarshal(body1, &sth1); err != nil || sth1.TreeSize != 3 {
			continue
		}
		b.sthSize = 500
		// Hammer until a stale fault fires; a stale response shows the
		// old size.
		for i := 0; i < 64; i++ {
			_, body, err := get(t, client, srv.URL+"/ct/v1/get-sth")
			if err != nil {
				t.Fatal(err)
			}
			var sth struct {
				TreeSize int `json:"tree_size"`
			}
			if err := json.Unmarshal(body, &sth); err != nil {
				t.Fatal(err)
			}
			if sth.TreeSize == 3 {
				return // stale head replayed
			}
		}
		t.Fatal("no stale head observed in 64 requests at rate 0.5")
	}
	t.Fatal("no usable seed found")
}

func TestPoisonEntries(t *testing.T) {
	srv := httptest.NewServer((&backend{sthSize: 5}).handler())
	defer srv.Close()
	tr := New(Config{Seed: 1, Rate: 0, PoisonEntries: map[int]bool{1: true}}, nil)
	client := &http.Client{Transport: tr}
	// Poisoning is persistent: every fetch corrupts entry 1 and leaves
	// entry 0 alone.
	for i := 0; i < 3; i++ {
		_, body, err := get(t, client, srv.URL+"/ct/v1/get-entries?start=0&end=1")
		if err != nil {
			t.Fatal(err)
		}
		var resp struct {
			Entries []struct {
				Index     int    `json:"index"`
				LeafInput string `json:"leaf_input"`
			} `json:"entries"`
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Entries) != 2 {
			t.Fatalf("entries %+v", resp.Entries)
		}
		if resp.Entries[0].LeafInput != "AAAA" {
			t.Fatalf("clean entry mangled: %+v", resp.Entries[0])
		}
		if resp.Entries[1].LeafInput != "!!not-base64!!" {
			t.Fatalf("poisoned entry not corrupted: %+v", resp.Entries[1])
		}
	}
	if st := tr.Stats(); st.Poisoned != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestHandlerMiddleware(t *testing.T) {
	tr := New(Config{Seed: 1, Rate: 1, Kinds: []Kind{ServerError}, MaxConsecutive: 1}, nil)
	srv := httptest.NewServer(tr.Handler((&backend{sthSize: 5}).handler()))
	defer srv.Close()
	// Cap 1 at rate 1: responses alternate 503 / 200.
	resp1, _, err := get(t, http.DefaultClient, srv.URL+"/x")
	if err != nil {
		t.Fatal(err)
	}
	resp2, body2, err := get(t, http.DefaultClient, srv.URL+"/x")
	if err != nil {
		t.Fatal(err)
	}
	if resp1.StatusCode != http.StatusServiceUnavailable || resp2.StatusCode != http.StatusOK {
		t.Fatalf("status sequence %s, %s", resp1.Status, resp2.Status)
	}
	if !strings.Contains(string(body2), `"ok"`) {
		t.Fatalf("pass-through body %q", body2)
	}
}

func TestKindString(t *testing.T) {
	for _, k := range append(AllKinds(), Hang, Reset) {
		if s := k.String(); s == "" || strings.HasPrefix(s, "kind(") {
			t.Fatalf("kind %d has no name", int(k))
		}
	}
}

// TestAllKindsExcludesOptIn pins the seed-stability contract: adding
// Hang or Reset to the default mix would reshuffle every seeded fault
// sequence and park mixed-kind chaos runs on stalled connections.
func TestAllKindsExcludesOptIn(t *testing.T) {
	for _, k := range AllKinds() {
		if k == Hang || k == Reset {
			t.Fatalf("%v must stay opt-in, not part of AllKinds", k)
		}
	}
}

func TestParseKinds(t *testing.T) {
	kinds, err := ParseKinds("hang, reset,server-error")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{Hang, Reset, ServerError}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	if kinds, err := ParseKinds(""); err != nil || kinds != nil {
		t.Fatalf("empty spec: %v, %v", kinds, err)
	}
	if _, err := ParseKinds("hang,bogus"); err == nil {
		t.Fatal("unknown kind must be rejected")
	}
	// Every printable kind round-trips through its own name.
	for _, k := range append(AllKinds(), Hang, Reset) {
		got, err := ParseKinds(k.String())
		if err != nil || len(got) != 1 || got[0] != k {
			t.Fatalf("round-trip %v: %v, %v", k, got, err)
		}
	}
}

// TestHangFaultHonorsContext: a hung request must release as soon as
// the caller's deadline fires, not sit out the full stall.
func TestHangFaultHonorsContext(t *testing.T) {
	srv := httptest.NewServer((&backend{sthSize: 5}).handler())
	defer srv.Close()
	tr := New(Config{Seed: 1, Rate: 1, Kinds: []Kind{Hang}, HangFor: time.Minute, MaxConsecutive: -1}, nil)
	client := &http.Client{Transport: tr}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = client.Do(req)
	if err == nil {
		t.Fatal("hung request returned a response")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hang ignored the context: released after %v", elapsed)
	}
}

// TestHangFaultElapses: without a deadline the stall ends in a dead
// connection, so deadline-less clients are not stuck forever.
func TestHangFaultElapses(t *testing.T) {
	srv := httptest.NewServer((&backend{sthSize: 5}).handler())
	defer srv.Close()
	tr := New(Config{Seed: 1, Rate: 1, Kinds: []Kind{Hang}, HangFor: 5 * time.Millisecond, MaxConsecutive: -1}, nil)
	client := &http.Client{Transport: tr}
	_, err := client.Get(srv.URL + "/x")
	if err == nil || !errors.Is(errors.Unwrap(err), ErrHung) {
		t.Fatalf("want ErrHung, got %v", err)
	}
	if st := tr.Stats(); st.Faults[Hang] != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestResetFaultTransport: the response starts normally and dies
// mid-body with ErrReset.
func TestResetFaultTransport(t *testing.T) {
	srv := httptest.NewServer((&backend{sthSize: 5}).handler())
	defer srv.Close()
	tr := New(Config{Seed: 1, Rate: 1, Kinds: []Kind{Reset}, MaxConsecutive: -1}, nil)
	client := &http.Client{Transport: tr}
	resp, err := client.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reset fault must start as a 200: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, ErrReset) {
		t.Fatalf("want ErrReset mid-body, got err=%v body=%q", err, body)
	}
	if len(body) == 0 {
		t.Fatal("reset must deliver a partial body, not none")
	}
}

// TestHangHandler: the server-side middleware stalls without writing a
// byte and the inner handler never runs; a client deadline escapes.
func TestHangHandler(t *testing.T) {
	tr := New(Config{Seed: 1, Rate: 1, Kinds: []Kind{Hang}, HangFor: time.Minute, MaxConsecutive: -1}, nil)
	srv := httptest.NewServer(tr.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("inner handler ran during a hang")
	})))
	defer srv.Close()
	client := &http.Client{Timeout: 50 * time.Millisecond}
	start := time.Now()
	_, err := client.Get(srv.URL + "/x")
	if err == nil {
		t.Fatal("hung request returned a response")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("client stuck %v behind a hang", elapsed)
	}
}

// TestResetHandler: the middleware delivers part of the body then
// aborts the connection, so the client read fails mid-stream.
func TestResetHandler(t *testing.T) {
	big := strings.Repeat(`{"pad":"xxxxxxxx"}`, 512)
	tr := New(Config{Seed: 1, Rate: 1, Kinds: []Kind{Reset}, MaxConsecutive: -1}, nil)
	srv := httptest.NewServer(tr.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, big)
	})))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("reset connection read cleanly: %d bytes", len(body))
	}
	if len(body) >= len(big) {
		t.Fatalf("full body arrived despite reset: %d bytes", len(body))
	}
}

// TestLatencyCancelRoundTrip is the regression test for the latency
// fault honouring context cancellation: a cancelled request must
// return promptly with the context's error, not sit out the full
// configured delay.
func TestLatencyCancelRoundTrip(t *testing.T) {
	srv := httptest.NewServer((&backend{sthSize: 5}).handler())
	defer srv.Close()
	tr := New(Config{Seed: 3, Rate: 1, Kinds: []Kind{Latency}, Latency: time.Minute, MaxConsecutive: -1}, nil)
	client := &http.Client{Transport: tr}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = client.Do(req)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled request returned a response")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; the latency sleep ignored the context", elapsed)
	}
}

// TestLatencyCancelHandler covers the server-side middleware's latency
// path the same way: a client that goes away mid-delay must unblock
// the handler promptly.
func TestLatencyCancelHandler(t *testing.T) {
	tr := New(Config{Seed: 3, Rate: 1, Kinds: []Kind{Latency}, Latency: time.Minute, MaxConsecutive: -1}, nil)
	done := make(chan struct{})
	srv := httptest.NewServer(tr.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("inner handler ran despite cancellation")
	})))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	go func() {
		_, cerr := http.DefaultClient.Do(req)
		if cerr == nil {
			t.Error("cancelled request returned a response")
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler latency sleep did not unblock on cancellation")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}
