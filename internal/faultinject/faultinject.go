// Package faultinject deterministically injects HTTP faults into the
// CT crawl path so every degraded-network failure mode the sync
// pipeline must survive — flaky logs, truncated responses, corrupt
// encodings, stale tree heads — is reproducible in tests. Crawl gaps
// and transport failures, not just Unicode tricks, are how
// certificates go missing from monitor indexes (§6.1 threat model;
// see also Scheitle et al. on CT monitor coverage), so the resilience
// layer in internal/ctlog and internal/monitor is exercised against
// this injector rather than against the network.
//
// The injector is seeded: the same Config produces the same fault
// sequence for a given request order, which keeps chaos tests
// debuggable. A per-endpoint consecutive-fault cap bounds how many
// times in a row one URL can fail, so a client that retries at least
// MaxConsecutive+1 times is guaranteed to make progress.
package faultinject

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// ServerError replaces the response with a 503, as overloaded logs do.
	ServerError Kind = iota
	// Drop fails the request at the transport layer (connection reset).
	Drop
	// Latency delays the request, then lets it through unchanged.
	Latency
	// Truncate cuts the response body off mid-stream.
	Truncate
	// CorruptJSON mangles response bytes so decoding fails.
	CorruptJSON
	// StaleSTH replays an earlier get-sth body, modeling a log frontend
	// serving a lagging tree head.
	StaleSTH
	// Hang stalls the request (slow-loris style) for Config.HangFor,
	// honoring the request context, then fails it. Opt-in: not part of
	// AllKinds, because it holds connections open far longer than the
	// other faults and would stall mixed-kind chaos runs.
	Hang
	// Reset serves a partial body then closes the connection abruptly,
	// modeling a mid-transfer TCP reset. Opt-in like Hang: adding it to
	// AllKinds would reshuffle every seeded fault sequence.
	Reset
	// ProofTamper flips one bit inside a Merkle proof node on
	// get-proof-by-hash and get-sth-consistency responses (re-encoded as
	// valid base64, so only verification — not decoding — rejects it).
	// Elsewhere it degrades to ServerError. Opt-in like Hang/Reset: it
	// only matters to auditing crawls and must not reshuffle seeded
	// sequences.
	ProofTamper
	// SthEquivocate flips one bit of the root hash in get-sth responses,
	// keeping the tree size: the canonical split-view signal a
	// consistency-auditing monitor must catch. The response stays
	// well-formed, so like StaleSTH it does not consume the
	// consecutive-fault budget and works at rate 1.0. Opt-in.
	SthEquivocate
)

func (k Kind) String() string {
	switch k {
	case ServerError:
		return "server-error"
	case Drop:
		return "drop"
	case Latency:
		return "latency"
	case Truncate:
		return "truncate"
	case CorruptJSON:
		return "corrupt-json"
	case StaleSTH:
		return "stale-sth"
	case Hang:
		return "hang"
	case Reset:
		return "reset"
	case ProofTamper:
		return "proof-tamper"
	case SthEquivocate:
		return "sth-equivocate"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// AllKinds returns every fault class drawn by default, for configs
// that want the full mix. Hang and Reset are deliberately excluded:
// they are opt-in via Config.Kinds (or ParseKinds) so that existing
// seeded fault sequences stay stable and mixed-kind runs don't park
// on stalled connections.
func AllKinds() []Kind {
	return []Kind{ServerError, Drop, Latency, Truncate, CorruptJSON, StaleSTH}
}

// ParseKinds turns a comma-separated list of kind names (as printed by
// Kind.String, e.g. "hang,reset,server-error") into kinds for
// Config.Kinds. Empty input yields nil, which means AllKinds.
func ParseKinds(s string) ([]Kind, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	byName := make(map[string]Kind)
	for _, k := range append(AllKinds(), Hang, Reset, ProofTamper, SthEquivocate) {
		byName[k.String()] = k
	}
	var kinds []Kind
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		k, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("faultinject: unknown fault kind %q", name)
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

// Config controls an injector.
type Config struct {
	// Seed fixes the fault sequence; equal seeds and request orders
	// reproduce identical faults.
	Seed int64
	// Rate is the probability in [0,1] that a request draws a fault.
	Rate float64
	// Kinds restricts which faults may be drawn; nil means AllKinds.
	Kinds []Kind
	// Latency is the injected delay for Latency faults (default 2ms).
	Latency time.Duration
	// HangFor is how long a Hang fault stalls before failing the
	// request (default 1s). The stall always honors the request
	// context, so a client with a deadline is released early.
	HangFor time.Duration
	// MaxConsecutive caps back-to-back faults per request key so
	// retries always terminate (default 2; negative disables the cap).
	MaxConsecutive int
	// PoisonEntries lists log entry indices whose leaf_input is
	// persistently corrupted in every get-entries response — unlike the
	// transient faults above, retrying never heals these, forcing the
	// monitor's bisection path.
	PoisonEntries map[int]bool
}

// Stats counts what the injector did.
type Stats struct {
	Requests int64
	Faults   map[Kind]int64
	Poisoned int64
}

// Total returns the number of transient faults injected.
func (s Stats) Total() int64 {
	var n int64
	for _, c := range s.Faults {
		n += c
	}
	return n
}

// ErrDropped is the transport error returned for Drop faults.
var ErrDropped = errors.New("faultinject: connection dropped")

// ErrHung is the transport error returned when a Hang fault's stall
// elapses without the request context expiring first.
var ErrHung = errors.New("faultinject: connection stalled then dropped")

// ErrReset is the mid-body read error produced by Reset faults.
var ErrReset = errors.New("faultinject: connection reset mid-body")

// Transport is an http.RoundTripper that injects faults in front of an
// inner transport. Safe for concurrent use.
type Transport struct {
	cfg  Config
	next http.RoundTripper

	mu          sync.Mutex
	rng         *rand.Rand
	consecutive map[string]int
	staleSTH    []byte
	stats       Stats
}

// New builds a Transport applying cfg before next (nil next means
// http.DefaultTransport).
func New(cfg Config, next http.RoundTripper) *Transport {
	if next == nil {
		next = http.DefaultTransport
	}
	if cfg.Latency <= 0 {
		cfg.Latency = 2 * time.Millisecond
	}
	if cfg.HangFor <= 0 {
		cfg.HangFor = time.Second
	}
	if cfg.MaxConsecutive == 0 {
		cfg.MaxConsecutive = 2
	}
	if cfg.Kinds == nil {
		cfg.Kinds = AllKinds()
	}
	return &Transport{
		cfg:         cfg,
		next:        next,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		consecutive: make(map[string]int),
	}
}

// Stats returns a snapshot of the injector's counters.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := Stats{Requests: t.stats.Requests, Poisoned: t.stats.Poisoned, Faults: make(map[Kind]int64, len(t.stats.Faults))}
	for k, v := range t.stats.Faults {
		out.Faults[k] = v
	}
	return out
}

// draw decides whether, and which, fault to inject for key. It holds
// the lock only for the decision so slow downstream requests don't
// serialize.
func (t *Transport) draw(key string, isSTH, isProof bool) (Kind, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Requests++
	capped := t.cfg.MaxConsecutive >= 0 && t.consecutive[key] >= t.cfg.MaxConsecutive
	if capped || t.rng.Float64() >= t.cfg.Rate {
		t.consecutive[key] = 0
		return 0, false
	}
	kind := t.cfg.Kinds[t.rng.Intn(len(t.cfg.Kinds))]
	// StaleSTH only makes sense on get-sth with a cached head; degrade
	// to a plain 503 elsewhere so the configured rate still holds. The
	// proof/STH mangling kinds degrade the same way off their endpoints.
	if kind == StaleSTH && (!isSTH || t.staleSTH == nil) {
		kind = ServerError
	}
	if kind == SthEquivocate && !isSTH {
		kind = ServerError
	}
	if kind == ProofTamper && !isProof {
		kind = ServerError
	}
	// Latency, StaleSTH, and SthEquivocate produce usable responses, so
	// they don't consume the consecutive-failure budget. ProofTamper
	// does: the cap is what lets an auditing crawl's proof refetch heal
	// transient damage while a persistently lying log stays caught.
	if kind == Latency || kind == StaleSTH || kind == SthEquivocate {
		t.consecutive[key] = 0
	} else {
		t.consecutive[key]++
	}
	if t.stats.Faults == nil {
		t.stats.Faults = make(map[Kind]int64)
	}
	t.stats.Faults[kind]++
	return kind, true
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	isSTH := strings.HasSuffix(req.URL.Path, "/get-sth")
	isProof := strings.HasSuffix(req.URL.Path, "/get-proof-by-hash") ||
		strings.HasSuffix(req.URL.Path, "/get-sth-consistency")
	key := req.URL.Path + "?" + req.URL.RawQuery
	kind, faulted := t.draw(key, isSTH, isProof)
	if faulted {
		switch kind {
		case ServerError:
			return syntheticResponse(req, http.StatusServiceUnavailable, []byte("injected overload\n"), "text/plain"), nil
		case Drop:
			return nil, ErrDropped
		case Hang:
			// Slow loris: the far end accepts and then goes silent. A
			// client deadline fires first if one is set; otherwise the
			// stall ends in a dead connection.
			if err := sleepCtx(req.Context(), t.cfg.HangFor); err != nil {
				return nil, err
			}
			return nil, ErrHung
		case StaleSTH:
			t.mu.Lock()
			body := t.staleSTH
			t.mu.Unlock()
			return syntheticResponse(req, http.StatusOK, body, "application/json"), nil
		case Latency:
			if err := sleepCtx(req.Context(), t.cfg.Latency); err != nil {
				return nil, err
			}
		}
	}
	resp, err := t.next.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	// Body-level faults and persistent poisoning need the real bytes.
	needsPoison := len(t.cfg.PoisonEntries) > 0 && strings.HasSuffix(req.URL.Path, "/get-entries")
	needsBody := needsPoison || isSTH ||
		(faulted && (kind == Truncate || kind == CorruptJSON || kind == Reset || kind == ProofTamper || kind == SthEquivocate))
	if !needsBody || resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	if isSTH {
		t.mu.Lock()
		if t.staleSTH == nil {
			t.staleSTH = body
		}
		t.mu.Unlock()
	}
	if needsPoison {
		body = t.poison(body)
	}
	if faulted {
		switch kind {
		case Truncate:
			resp.Body = &truncatedBody{r: bytes.NewReader(body[:len(body)/2]), err: io.ErrUnexpectedEOF}
			resp.ContentLength = -1
			resp.Header.Del("Content-Length")
			return resp, nil
		case Reset:
			resp.Body = &truncatedBody{r: bytes.NewReader(body[:len(body)/2]), err: ErrReset}
			resp.ContentLength = -1
			resp.Header.Del("Content-Length")
			return resp, nil
		case CorruptJSON:
			body = corrupt(body)
		case ProofTamper:
			body = tamperProof(body)
		case SthEquivocate:
			body = equivocateSTH(body)
		}
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	return resp, nil
}

// sleepCtx waits for d or until ctx is cancelled, whichever comes
// first. Unlike time.After, the timer is stopped on cancellation, so
// a long configured latency does not pin a timer (and its goroutine
// wakeup) after the caller has gone away.
func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// poison rewrites the leaf_input of configured entry indices to
// invalid base64. It decodes the generic get-entries shape so it does
// not depend on the ctlog package.
func (t *Transport) poison(body []byte) []byte {
	var resp struct {
		Entries []map[string]any `json:"entries"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return body
	}
	changed := false
	for _, e := range resp.Entries {
		idx, ok := e["index"].(float64)
		if !ok || !t.cfg.PoisonEntries[int(idx)] {
			continue
		}
		e["leaf_input"] = "!!not-base64!!"
		changed = true
		t.mu.Lock()
		t.stats.Poisoned++
		t.mu.Unlock()
	}
	if !changed {
		return body
	}
	out, err := json.Marshal(map[string]any{"entries": resp.Entries})
	if err != nil {
		return body
	}
	return out
}

// tamperProof flips one bit inside the first node of a Merkle proof
// body (audit_path or consistency array) and re-encodes it as valid
// base64: decoding succeeds everywhere and only proof verification
// rejects the response. An empty proof (single-leaf tree) passes
// through unchanged — there is nothing to tamper.
func tamperProof(body []byte) []byte {
	var resp map[string]any
	if err := json.Unmarshal(body, &resp); err != nil {
		return body
	}
	for _, field := range []string{"audit_path", "consistency"} {
		arr, ok := resp[field].([]any)
		if !ok || len(arr) == 0 {
			continue
		}
		s, ok := arr[0].(string)
		if !ok {
			continue
		}
		raw, err := base64.StdEncoding.DecodeString(s)
		if err != nil || len(raw) == 0 {
			continue
		}
		raw[0] ^= 0x01
		arr[0] = base64.StdEncoding.EncodeToString(raw)
		resp[field] = arr
		if out, err := json.Marshal(resp); err == nil {
			return out
		}
	}
	return body
}

// equivocateSTH flips one bit of a get-sth body's root hash, keeping
// the tree size and signature bytes: a split view. Only a monitor that
// actually checks roots (or proofs against them) can tell.
func equivocateSTH(body []byte) []byte {
	var resp map[string]any
	if err := json.Unmarshal(body, &resp); err != nil {
		return body
	}
	s, ok := resp["sha256_root_hash"].(string)
	if !ok {
		return body
	}
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil || len(raw) == 0 {
		return body
	}
	raw[0] ^= 0x01
	resp["sha256_root_hash"] = base64.StdEncoding.EncodeToString(raw)
	if out, err := json.Marshal(resp); err == nil {
		return out
	}
	return body
}

// corrupt deterministically mangles a JSON body so decoding fails.
func corrupt(body []byte) []byte {
	out := append([]byte(nil), body...)
	if len(out) == 0 {
		return []byte("\x00garbage")
	}
	// Smash the opening brace and a mid-body byte; either alone is
	// enough to break json.Unmarshal.
	out[0] = '\x00'
	out[len(out)/2] = '\xff'
	return out
}

// truncatedBody yields its prefix then fails with err, like a torn
// (Truncate) or reset (Reset) connection.
type truncatedBody struct {
	r   *bytes.Reader
	err error
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	if err == io.EOF {
		return n, b.err
	}
	return n, err
}

func (b *truncatedBody) Close() error { return nil }

func syntheticResponse(req *http.Request, status int, body []byte, contentType string) *http.Response {
	return &http.Response{
		Status:        http.StatusText(status),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{contentType}},
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// Handler wraps an http.Handler with server-side injection of the
// response-shaping faults (ServerError, Latency, Truncate,
// CorruptJSON); transport-only kinds in the config are drawn but
// served as 503s. Useful when the client under test cannot take a
// custom RoundTripper.
func (t *Transport) Handler(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Path + "?" + r.URL.RawQuery
		kind, faulted := t.draw(key, false, false)
		if !faulted {
			next.ServeHTTP(w, r)
			return
		}
		switch kind {
		case Latency:
			if err := sleepCtx(r.Context(), t.cfg.Latency); err != nil {
				return
			}
			next.ServeHTTP(w, r)
		case Hang:
			// Stall without writing a byte, then abort the connection.
			// ErrAbortHandler makes net/http slam the socket shut rather
			// than finish the response, so the client sees a dead peer,
			// not a clean error status.
			if err := sleepCtx(r.Context(), t.cfg.HangFor); err != nil {
				return // client gave up first
			}
			panic(http.ErrAbortHandler)
		case Reset:
			rec := &recordingWriter{header: make(http.Header)}
			next.ServeHTTP(rec, r)
			body := rec.buf.Bytes()
			// Deliver half the payload, force it onto the wire, then
			// abort mid-body like a TCP reset.
			w.Header().Del("Content-Length")
			if rec.status != 0 {
				w.WriteHeader(rec.status)
			}
			w.Write(body[:len(body)/2])
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler)
		case Truncate, CorruptJSON:
			rec := &recordingWriter{header: make(http.Header)}
			next.ServeHTTP(rec, r)
			body := rec.buf.Bytes()
			if kind == Truncate {
				body = body[:len(body)/2]
			} else {
				body = corrupt(body)
			}
			for k, v := range rec.header {
				w.Header()[k] = v
			}
			w.Header().Del("Content-Length")
			if rec.status != 0 {
				w.WriteHeader(rec.status)
			}
			w.Write(body)
		default: // ServerError, Drop, StaleSTH
			http.Error(w, "injected overload", http.StatusServiceUnavailable)
		}
	})
}

// recordingWriter buffers a handler's response for mangling.
type recordingWriter struct {
	header http.Header
	buf    bytes.Buffer
	status int
}

func (w *recordingWriter) Header() http.Header         { return w.header }
func (w *recordingWriter) Write(p []byte) (int, error) { return w.buf.Write(p) }
func (w *recordingWriter) WriteHeader(status int)      { w.status = status }
