GO ?= go

# Packages with concurrency-sensitive crawl/retry code; these run
# under the race detector in `make check`.
RACE_PKGS := ./internal/ctlog/... ./internal/monitor/... ./internal/faultinject/...

.PHONY: build vet test race check
build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

check: build vet test race
