GO ?= go

# Packages with concurrency-sensitive code (crawl/retry plus the fused
# measurement pipeline and the lock-free instrument registry); these
# run under the race detector in `make check`.
RACE_PKGS := ./internal/ctlog/... ./internal/monitor/... ./internal/faultinject/... \
	./internal/pipeline/... ./internal/corpus/... ./internal/lint/... \
	./internal/obs/... ./internal/serve/... ./internal/fleet/... \
	./internal/index/...

# End-to-end corpus size for `make bench` (34800 ≈ 1:1000 of the
# paper's dataset). Lower it for quick local runs:
#   make bench BENCH_E2E_SIZE=3480
BENCH_E2E_SIZE ?= 34800
# Free-form note recorded in BENCH_7.json (hardware caveats etc.).
BENCH_NOTE ?=
# Interleaved bench rounds: the whole suite runs BENCH_ROUNDS times
# (round-robin, not back-to-back -count repeats) so benchjson's medians
# and min/max spread reflect cross-round noise, not warm-cache luck.
BENCH_ROUNDS ?= 3

# Address the smoke-metrics crawl serves its /metrics endpoint on.
SMOKE_METRICS_ADDR ?= 127.0.0.1:19321

.PHONY: build vet test race fuzz check bench profile allocguard obs-lint smoke-metrics soak soak-fleet
build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Seconds of coverage-guided fuzzing against the Merkle proof
# verifiers in `make check` — enough to shake out fold regressions
# without stalling the suite. Raise for a dedicated fuzz session.
FUZZ_TIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzProofVerification' -fuzztime $(FUZZ_TIME) ./internal/ctlog

check: build vet test race fuzz allocguard obs-lint smoke-metrics soak-fleet

# bench runs the end-to-end pipeline benchmarks (1 iteration each at
# paper scale), the streaming slot-recycling variant, the per-stage
# generate/lint benchmarks, the registry allocation guard, the
# fleet-crawl throughput benchmark, the certificate-index T1–T5
# query grid (point / prefix / range / ingest / mixed, LSM vs B+tree),
# and the ctlog T6 write grid (baseline parse+SCT / pre-parsed SCT /
# Merkle-batched seal) — BENCH_ROUNDS interleaved times — then records
# medians, min/max spread, derived per-cert allocation costs, the obs
# histogram snapshots, and a delta table against the previous
# BENCH_*.json in BENCH_7.json.
bench:
	{ for r in $$(seq 1 $(BENCH_ROUNDS)); do \
	    BENCH_E2E_SIZE=$(BENCH_E2E_SIZE) $(GO) test -run '^$$' \
		-bench 'MeasureCorpusE2E|MeasureCorpusStreamE2E|PipelineGenerateOnly|PipelineLintOnly' \
		-benchtime 1x -benchmem . ; \
	    $(GO) test -run '^$$' -bench 'RegistryRun' -benchmem ./internal/lint ; \
	    $(GO) test -run '^$$' -bench 'FleetCrawl' -benchtime 5x ./internal/fleet ; \
	    $(GO) test -run '^$$' -bench 'Index(Point|Prefix|Range|Ingest|Mixed)' \
		-benchmem ./internal/index ; \
	    $(GO) test -run '^$$' -bench 'Write(Baseline|PerEntry|Batched)' \
		-benchmem ./internal/ctlog ; \
	  done ; } \
	| $(GO) run ./cmd/benchjson -o BENCH_7.json -note "$(BENCH_NOTE)"

# profile captures CPU + heap (alloc_space) pprof profiles from a live
# paper-scale ctscan run via the internal/obs pprof handler; artifacts
# land in profiles/ (see profiles/README.md).
profile:
	./scripts/profile.sh

# allocguard enforces the per-cert allocation budgets in
# scripts/alloc_budgets.txt against the committed BENCH_7.json — a
# fast read-only check that fails `make check` when a recorded budget
# regresses.
allocguard:
	./scripts/allocguard.sh

# obs-lint fails when the metric families registered in code and the
# metrics reference table in DESIGN.md drift apart — in either
# direction (undocumented metric, or stale doc row).
obs-lint:
	./scripts/obs_lint.sh

# smoke-metrics boots a faulted ctmonitor crawl with a live metrics
# endpoint, scrapes /metrics, and asserts the crawl and client
# instruments are present with non-zero values.
smoke-metrics:
	@$(GO) build -o /tmp/ctmonitor-smoke ./cmd/ctmonitor
	@rm -f /tmp/ctmonitor-smoke.metrics; \
	/tmp/ctmonitor-smoke -entries 120 -fault-rate 0.25 -batch 16 \
		-metrics-addr $(SMOKE_METRICS_ADDR) -linger 30s \
		>/dev/null 2>/tmp/ctmonitor-smoke.log & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	ok=0; \
	for i in $$(seq 1 100); do \
		if curl -sf http://$(SMOKE_METRICS_ADDR)/metrics -o /tmp/ctmonitor-smoke.metrics 2>/dev/null \
			&& grep -q '^monitor_entries_synced_total [1-9]' /tmp/ctmonitor-smoke.metrics; then \
			ok=1; break; \
		fi; \
		sleep 0.2; \
	done; \
	[ $$ok -eq 1 ] || { echo "smoke-metrics: FAIL: no scrape with synced entries (see /tmp/ctmonitor-smoke.log)"; exit 1; }; \
	for pat in 'ctlog_requests_total{outcome="retryable"} [1-9]' \
		'ctlog_requests_total{outcome="ok"} [1-9]' \
		'ctlog_request_seconds_bucket' \
		'ctlog_server_requests_total' \
		'monitor_checkpoint_age_seconds'; do \
		grep -q "$$pat" /tmp/ctmonitor-smoke.metrics || { \
			echo "smoke-metrics: FAIL: missing $$pat"; exit 1; }; \
	done; \
	echo "smoke-metrics: OK ($$(wc -l < /tmp/ctmonitor-smoke.metrics) exposition lines)"

# soak drives the crash/recovery scenario end to end: a rate-limited,
# fault-injected (hang/reset/5xx) crawl is SIGTERMed mid-flight, then
# restarted off the same checkpoint file; soakcheck asserts the resumed
# crawl completes with exact entry accounting, that the overloaded log
# shed requests, and that the client breaker opened and re-closed.
soak:
	./scripts/soak.sh

# soak-fleet drives the multi-log crash/recovery scenario: four logs
# with disjoint fault profiles (hang, 25% 5xx, poisoned entries,
# clean) crawled by the fleet coordinator, SIGTERMed mid-flight, then
# restarted; soakcheck -fleet asserts per-log checkpoint resume with
# zero refetch, exact cross-log dedup accounting, poisoned-entry
# quarantine without stalling the healthy logs, and a fleet that
# degraded without dying.
soak-fleet:
	./scripts/soak_fleet.sh
