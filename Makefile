GO ?= go

# Packages with concurrency-sensitive code (crawl/retry plus the fused
# measurement pipeline); these run under the race detector in
# `make check`.
RACE_PKGS := ./internal/ctlog/... ./internal/monitor/... ./internal/faultinject/... \
	./internal/pipeline/... ./internal/corpus/... ./internal/lint/...

# End-to-end corpus size for `make bench` (34800 ≈ 1:1000 of the
# paper's dataset). Lower it for quick local runs:
#   make bench BENCH_E2E_SIZE=3480
BENCH_E2E_SIZE ?= 34800
# Free-form note recorded in BENCH_2.json (hardware caveats etc.).
BENCH_NOTE ?=

.PHONY: build vet test race check bench
build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

check: build vet test race

# bench runs the end-to-end pipeline benchmarks (1 iteration each at
# paper scale), the per-stage generate/lint benchmarks, and the registry
# allocation guard, then records everything in BENCH_2.json.
bench:
	{ BENCH_E2E_SIZE=$(BENCH_E2E_SIZE) $(GO) test -run '^$$' \
		-bench 'MeasureCorpusE2E|PipelineGenerateOnly|PipelineLintOnly' \
		-benchtime 1x -benchmem . ; \
	  $(GO) test -run '^$$' -bench 'RegistryRun' -benchmem ./internal/lint ; } \
	| $(GO) run ./cmd/benchjson -o BENCH_2.json -note "$(BENCH_NOTE)"
