package repro

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index). Each
// benchmark prints its table once — running
//
//	go test -bench=. -benchmem
//
// regenerates every row/series the paper reports alongside the cost of
// producing it.

import (
	"bytes"
	"context"
	"fmt"
	"math/big"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/asn1der"
	"repro/internal/browser"
	"repro/internal/certgen"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ctlog"
	"repro/internal/difftest"
	"repro/internal/hostverify"
	"repro/internal/lint"
	"repro/internal/middlebox"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/report"
	"repro/internal/revocation"
	"repro/internal/rfcrules"
	"repro/internal/strenc"
	"repro/internal/tlsimpl"
	"repro/internal/tlswire"
	"repro/internal/uni"
	"repro/internal/x509cert"
)

// benchCorpusSize keeps bench iterations affordable while preserving
// the population shapes (1:10 of the default 1:1000 scale).
const benchCorpusSize = 3480

var (
	benchOnce sync.Once
	benchM    *corpus.Measurement
	benchMAll *corpus.Measurement // effective dates ignored
	benchA    *core.Analyzer
)

func sharedMeasurement(b *testing.B) (*core.Analyzer, *corpus.Measurement) {
	b.Helper()
	benchOnce.Do(func() {
		benchA = core.NewAnalyzer()
		cfg := corpus.DefaultConfig()
		cfg.Size = benchCorpusSize
		c, err := corpus.Generate(cfg)
		if err != nil {
			panic(err)
		}
		benchM = corpus.RunLinter(c, benchA.Registry, lint.Options{})
		benchMAll = corpus.RunLinter(c, benchA.Registry, lint.Options{IgnoreEffectiveDates: true})
	})
	return benchA, benchM
}

var printOnce sync.Map

func printTable(name, table string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s\n", name, table)
	}
}

// ——— E1: Table 1 ———

func BenchmarkTable1Taxonomy(b *testing.B) {
	a, m := sharedMeasurement(b)
	b.ResetTimer()
	var rows []corpus.TaxonomyRow
	for i := 0; i < b.N; i++ {
		rows = m.Table1(a.Registry)
	}
	b.StopTimer()
	printTable("Table 1 (noncompliance taxonomy)", report.Table1(rows, m.NCCount()))
}

// ——— E2: Table 2 ———

func BenchmarkTable2Issuers(b *testing.B) {
	_, m := sharedMeasurement(b)
	b.ResetTimer()
	var rows []corpus.IssuerRow
	for i := 0; i < b.N; i++ {
		rows = m.Table2(10)
	}
	b.StopTimer()
	printTable("Table 2 (top issuers by NC Unicerts)", report.Table2(rows))
}

// ——— E3: Table 3 ———

func BenchmarkTable3Variants(b *testing.B) {
	_, m := sharedMeasurement(b)
	b.ResetTimer()
	var counts map[corpus.VariantStrategy]int
	for i := 0; i < b.N; i++ {
		counts = m.Table3()
	}
	b.StopTimer()
	printTable("Table 3 (Subject variant strategies)", report.Table3(counts))
}

// ——— E4/E5: Tables 4 and 5 ———

var (
	diffOnce sync.Once
	diffT4   []difftest.DecodeFinding
	diffT5   []difftest.CharFinding
)

func sharedLibraryAnalysis(b *testing.B) ([]difftest.DecodeFinding, []difftest.CharFinding) {
	b.Helper()
	diffOnce.Do(func() {
		a := core.NewAnalyzer()
		t4, t5, err := a.LibraryAnalysis()
		if err != nil {
			panic(err)
		}
		diffT4, diffT5 = t4, t5
	})
	return diffT4, diffT5
}

func BenchmarkTable4Decoding(b *testing.B) {
	sharedLibraryAnalysis(b)
	h, err := difftest.NewHarness(11)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Table4(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printTable("Table 4 (decoding methods)", report.Table4(diffT4))
}

func BenchmarkTable5CharChecks(b *testing.B) {
	sharedLibraryAnalysis(b)
	h, err := difftest.NewHarness(12)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Table5(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printTable("Table 5 (character-checking violations)", report.Table5(diffT5))
}

// ——— E6: Table 6 ———

func benchForgedCert(b *testing.B) *x509cert.Certificate {
	b.Helper()
	caKey, err := x509cert.GenerateKey(41)
	if err != nil {
		b.Fatal(err)
	}
	tpl := &x509cert.Template{
		SerialNumber: big.NewInt(6),
		Issuer:       x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, "Bench CA")),
		Subject:      x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, "victim.example\x00.attacker.site")),
		NotBefore:    time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:     time.Date(2025, 4, 1, 0, 0, 0, 0, time.UTC),
		SAN:          []x509cert.GeneralName{x509cert.DNSName("victim.example\x00.attacker.site")},
	}
	der, err := x509cert.Build(tpl, caKey, caKey)
	if err != nil {
		b.Fatal(err)
	}
	c, err := x509cert.Parse(der)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkTable6Monitors(b *testing.B) {
	forged := benchForgedCert(b)
	b.ResetTimer()
	var results []monitor.MisleadResult
	for i := 0; i < b.N; i++ {
		results = monitor.MisleadExperiment(forged, "victim.example")
	}
	b.StopTimer()
	printTable("Table 6 (CT monitor tolerance)", report.Table6(results))
}

// ——— E7: Table 11 ———

func BenchmarkTable11TopLints(b *testing.B) {
	_, m := sharedMeasurement(b)
	b.ResetTimer()
	var rows []corpus.LintRow
	for i := 0; i < b.N; i++ {
		rows = m.Table11(25)
	}
	b.StopTimer()
	printTable("Table 11 (top lints)", report.Table11(rows))
}

// ——— E8: Table 14 ———

func BenchmarkTable14Browsers(b *testing.B) {
	value, target := "www.‮lapyap‬.com", "www.paypal.com"
	b.ResetTimer()
	var findings []browser.SpoofFinding
	for i := 0; i < b.N; i++ {
		findings = browser.SpoofExperiment(value, target)
	}
	b.StopTimer()
	var rows [][]string
	for _, f := range findings {
		beh := browser.Behaviors()[f.Engine]
		rows = append(rows, []string{
			f.Engine.String(),
			fmt.Sprintf("%v", beh.C0C1Visible),
			fmt.Sprintf("%v", beh.LayoutInvisible),
			fmt.Sprintf("%v", beh.HomographFeasible),
			fmt.Sprintf("%v", beh.IncorrectSubstitutions),
			fmt.Sprintf("%v", beh.FlawedASN1RangeChecking),
			fmt.Sprintf("%v", beh.WarningSpoofable),
			fmt.Sprintf("%q", f.Rendered),
		})
	}
	printTable("Table 14 (browser rendering and spoofing)", report.Table(
		[]string{"Engine", "C0C1 visible", "Layout invisible", "Homograph", "Bad substitution", "Flawed range chk", "Warning spoofable", "Bidi CN renders as"},
		rows))
}

// ——— E9–E11: Figures 2–4 ———

func BenchmarkFigure2Trend(b *testing.B) {
	_, m := sharedMeasurement(b)
	b.ResetTimer()
	var rows []corpus.YearRow
	for i := 0; i < b.N; i++ {
		rows = m.Figure2()
	}
	b.StopTimer()
	printTable("Figure 2 (issuance trend)", report.Figure2(rows))
}

func BenchmarkFigure3ValidityCDF(b *testing.B) {
	_, m := sharedMeasurement(b)
	b.ResetTimer()
	var series map[string][]int
	for i := 0; i < b.N; i++ {
		series = map[string][]int{
			"IDNCert":      m.ValidityCDF(func(i int, e *corpus.Entry) bool { return e.Class == corpus.ClassIDNCert }),
			"OtherUnicert": m.ValidityCDF(func(i int, e *corpus.Entry) bool { return e.Class == corpus.ClassOtherUnicert }),
			"Noncompliant": m.ValidityCDF(func(i int, e *corpus.Entry) bool { return m.Noncompliant(i) }),
		}
	}
	b.StopTimer()
	printTable("Figure 3 (validity CDF)", report.Figure3(series))
}

func BenchmarkFigure4FieldMatrix(b *testing.B) {
	_, m := sharedMeasurement(b)
	b.ResetTimer()
	var matrix map[string]map[string]corpus.FieldCell
	for i := 0; i < b.N; i++ {
		matrix = m.Figure4(20)
	}
	b.StopTimer()
	printTable("Figure 4 (field × issuer matrix)", report.Figure4(matrix))
}

// ——— E12: §5.1 encoding-error impact (chain rebuild + verify) ———

func BenchmarkEncodingErrorImpact(b *testing.B) {
	_, m := sharedMeasurement(b)
	// Collect the encoding-error subset (cf. the paper's 7,415 certs).
	var subset []*corpus.Entry
	for i, e := range m.Corpus.Entries {
		if m.Noncompliant(i) {
			for _, f := range m.Results[i].Failed() {
				if f.Lint.Taxonomy == lint.T3InvalidEncoding {
					subset = append(subset, e)
					break
				}
			}
		}
	}
	if len(subset) == 0 {
		b.Skip("no encoding-error certificates in this corpus draw")
	}
	b.ResetTimer()
	verified := 0
	for i := 0; i < b.N; i++ {
		verified = 0
		for _, e := range subset {
			// Chain reconstruction: locate the issuing CA and verify the
			// signature, as the paper did via AIA (5,772 of 7,415).
			ca := m.Corpus.CAFor(e.IssuerOrg)
			if ca != nil && x509cert.VerifySignature(ca, e.Cert) {
				verified++
			}
		}
	}
	b.StopTimer()
	printTable("§5.1 encoding-error impact", fmt.Sprintf(
		"encoding-error Unicerts: %d of %d (paper: 7,415 of 34.8M); chain-verified: %d (paper: 5,772)\n",
		len(subset), len(m.Corpus.Entries), verified))
}

// ——— E13: §6.2 traffic obfuscation ———

func BenchmarkTrafficObfuscation(b *testing.B) {
	caKey, err := x509cert.GenerateKey(43)
	if err != nil {
		b.Fatal(err)
	}
	rule := middlebox.Rule{Field: "CN", Value: "Evil Entity"}
	payloads := middlebox.ObfuscationPayloads("Evil Entity")
	certs := make([]*x509cert.Certificate, 0, len(payloads))
	for i, p := range payloads {
		tpl := &x509cert.Template{
			SerialNumber: big.NewInt(int64(100 + i)),
			Issuer:       x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, "Obf CA")),
			Subject:      x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, p)),
			NotBefore:    time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC),
			NotAfter:     time.Date(2025, 4, 1, 0, 0, 0, 0, time.UTC),
			SAN:          []x509cert.GeneralName{x509cert.DNSName("obf.example")},
		}
		der, err := x509cert.Build(tpl, caKey, caKey)
		if err != nil {
			b.Fatal(err)
		}
		c, err := x509cert.Parse(der)
		if err != nil {
			b.Fatal(err)
		}
		certs = append(certs, c)
	}
	b.ResetTimer()
	evaded := 0
	for i := 0; i < b.N; i++ {
		evaded = 0
		for _, c := range certs {
			for _, res := range middlebox.Evasion(c, rule) {
				if res.Evaded {
					evaded++
				}
			}
		}
	}
	b.StopTimer()
	printTable("§6.2 traffic obfuscation", fmt.Sprintf(
		"%d of %d payload×engine combinations evade the CN rule\n", evaded, len(certs)*3))
}

// ——— E14: rule extraction ———

func BenchmarkRuleExtraction(b *testing.B) {
	var rules []rfcrules.Rule
	for i := 0; i < b.N; i++ {
		e := rfcrules.NewEngine()
		for _, d := range e.Documents() {
			_ = rfcrules.FilterSections(d, rfcrules.Keywords)
		}
		_ = rfcrules.ResolveUpdates(e.Documents())
		rules = e.DeriveRules()
	}
	b.StopTimer()
	newCount := 0
	for _, r := range rules {
		if r.New {
			newCount++
		}
	}
	printTable("§3.1.1 rule extraction", fmt.Sprintf("derived %d constraint rules (%d new)\n", len(rules), newCount))
}

// ——— E2E pipeline benchmarks (make bench → BENCH_2.json) ———

// benchE2ESize returns the end-to-end corpus size: the paper-scale
// default of 34,800 (1:1000 of the dataset), overridable through
// BENCH_E2E_SIZE for quick runs.
func benchE2ESize(b *testing.B) int {
	if s := os.Getenv("BENCH_E2E_SIZE"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			b.Fatalf("bad BENCH_E2E_SIZE %q", s)
		}
		return n
	}
	return 34800
}

func benchMeasureE2E(b *testing.B, workers int) {
	a := core.NewAnalyzer()
	reg := obs.NewRegistry()
	cfg := corpus.DefaultConfig()
	cfg.Size = benchE2ESize(b)
	certs := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := a.MeasureCorpusPipeline(context.Background(), cfg, lint.Options{},
			pipeline.Config{Workers: workers, Obs: reg})
		if err != nil {
			b.Fatal(err)
		}
		certs += len(res.Measurement.Corpus.Entries)
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(certs)/secs, "certs/s")
	}
	printObsHistograms(b.Name(), reg, "pipeline_slot_generate_seconds", "pipeline_slot_lint_seconds")
}

// printObsHistograms emits one "obshist" line per named histogram so
// benchjson records the per-slot latency distributions alongside the
// throughput numbers in BENCH_3.json.
func printObsHistograms(bench string, reg *obs.Registry, names ...string) {
	for _, name := range names {
		h := reg.Histogram(name, nil)
		s := h.Snapshot()
		if s.Count == 0 {
			continue
		}
		fmt.Printf("obshist %s %s count=%d sum=%g p50=%g p90=%g p99=%g\n",
			bench, name, s.Count, s.Sum, s.Quantile(0.5), s.Quantile(0.9), s.Quantile(0.99))
	}
}

// BenchmarkMeasureCorpusE2E1 is the sequential baseline for the
// speedup figure in BENCH_2.json.
func BenchmarkMeasureCorpusE2E1(b *testing.B) { benchMeasureE2E(b, 1) }

// BenchmarkMeasureCorpusE2E8 measures the fused pipeline at 8 workers.
func BenchmarkMeasureCorpusE2E8(b *testing.B) { benchMeasureE2E(b, 8) }

// BenchmarkMeasureCorpusE2ENumCPU measures the default sizing.
func BenchmarkMeasureCorpusE2ENumCPU(b *testing.B) { benchMeasureE2E(b, 0) }

// BenchmarkMeasureCorpusStreamE2E8 measures the slot-recycling
// streaming pipeline at 8 workers: same generate→lint work as
// MeasureCorpusE2E8, but slots are folded and released instead of
// retained, so steady-state memory is O(workers) and Entry/Certificate
// structs recycle batch-wise. The fold mirrors a realistic consumer by
// tallying per-status finding counts.
func BenchmarkMeasureCorpusStreamE2E8(b *testing.B) {
	cfg := corpus.DefaultConfig()
	cfg.Size = benchE2ESize(b)
	certs := 0
	var failed int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := pipeline.MeasureStream(context.Background(), cfg, lint.Global, lint.Options{},
			pipeline.Config{Workers: 8},
			func(_ int, s *corpus.Slot, results []*lint.CertResult) error {
				certs += len(s.Entries)
				for _, r := range results {
					if r != nil && r.Noncompliant() {
						failed++
					}
				}
				return nil
			})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(certs)/secs, "certs/s")
	}
	_ = failed
}

// BenchmarkPipelineGenerateOnly isolates the generation stage (build,
// sign, parse) at the shared bench scale.
func BenchmarkPipelineGenerateOnly(b *testing.B) {
	cfg := corpus.DefaultConfig()
	cfg.Size = benchCorpusSize
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := corpus.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N*benchCorpusSize)/secs, "certs/s")
	}
}

// BenchmarkPipelineLintOnly isolates the lint stage over a
// pre-generated corpus.
func BenchmarkPipelineLintOnly(b *testing.B) {
	a, m := sharedMeasurement(b)
	c := m.Corpus
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = corpus.RunLinter(c, a.Registry, lint.Options{})
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N*len(c.Entries))/secs, "certs/s")
	}
}

// ——— Throughput benchmarks for the core pipeline ———

func BenchmarkLintSingleCertificate(b *testing.B) {
	a, m := sharedMeasurement(b)
	der := m.Corpus.Entries[0].DER
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.LintDER(der, lint.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseCertificate(b *testing.B) {
	_, m := sharedMeasurement(b)
	der := m.Corpus.Entries[0].DER
	b.SetBytes(int64(len(der)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := x509cert.Parse(der); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildCertificate(b *testing.B) {
	caKey, _ := x509cert.GenerateKey(3)
	leafKey, _ := x509cert.GenerateKey(4)
	tpl := &x509cert.Template{
		SerialNumber: big.NewInt(1),
		Issuer:       x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, "Perf CA")),
		Subject:      x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, "perf.example")),
		NotBefore:    time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:     time.Date(2025, 4, 1, 0, 0, 0, 0, time.UTC),
		SAN:          []x509cert.GeneralName{x509cert.DNSName("perf.example")},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := x509cert.Build(tpl, caKey, leafKey); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNFCNormalize(b *testing.B) {
	s := "Příliš žluťoučký kůň úpěl ďábelské ódy — Středočeský kraj"
	b.SetBytes(int64(len(s)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = uni.NFC(s)
	}
}

func BenchmarkDecodeUCS2(b *testing.B) {
	content, _ := strenc.Encode(strenc.UCS2, "株式会社 中国銀行 East Asia Branch Office")
	b.SetBytes(int64(len(content)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := strenc.Decode(strenc.UCS2, strenc.Strict, content); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMerkleInclusionProof(b *testing.B) {
	var tree ctlog.Tree
	for i := 0; i < 4096; i++ {
		tree.Append(ctlog.LeafHash([]byte{byte(i), byte(i >> 8)}))
	}
	root, _ := tree.Root(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i % 4096
		proof, err := tree.InclusionProof(idx, 4096)
		if err != nil {
			b.Fatal(err)
		}
		if !ctlog.VerifyInclusion(ctlog.LeafHash([]byte{byte(idx), byte(idx >> 8)}), idx, 4096, proof, root) {
			b.Fatal("proof failed")
		}
	}
}

// ——— Ablation benchmarks (DESIGN.md design choices) ———

func BenchmarkAblationEffectiveDates(b *testing.B) {
	_, m := sharedMeasurement(b)
	gated := m.NCCount()
	ungated := benchMAll.NCCount()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = benchMAll.NCCount()
	}
	b.StopTimer()
	ratio := float64(ungated) / float64(maxInt(gated, 1))
	printTable("Ablation: effective dates", fmt.Sprintf(
		"date-gated NC: %d; all-dates NC: %d (×%.1f — paper: 249.3K → 1.8M, ×7.2)\n", gated, ungated, ratio))
}

func BenchmarkAblationStrictDER(b *testing.B) {
	// Lenient BER parsing accepts non-minimal lengths strict DER
	// rejects; measure both paths on a BER-ish certificate.
	_, m := sharedMeasurement(b)
	der := m.Corpus.Entries[0].DER
	b.Run("strict", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := x509cert.ParseWithMode(der, x509cert.ParseStrict); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lenient", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := x509cert.ParseWithMode(der, x509cert.ParseLenient); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblationNFCQuickCheck(b *testing.B) {
	s := "Städtische Werke München" // NFC input: quick path
	b.Run("quickcheck", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = uni.HasDecomposedSequence(s)
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = uni.IsNFC(s)
		}
	})
}

func BenchmarkAblationPrecertFilter(b *testing.B) {
	_, m := sharedMeasurement(b)
	log, err := ctlog.NewLog(77)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range m.Corpus.Entries[:200] {
		if _, err := log.AddParsed(e.DER, false); err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range m.Corpus.Precerts {
		if _, err := log.AddParsed(p.DER, true); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	var kept int
	for i := 0; i < b.N; i++ {
		kept = len(log.RegularCertificates())
	}
	b.StopTimer()
	printTable("Ablation: precert filter", fmt.Sprintf(
		"log entries: %d; after §4.1 precert filter: %d\n", log.Size(), kept))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Guard: the shared corpus reproduces the paper's headline number.
func TestBenchCorpusShape(t *testing.T) {
	benchOnce.Do(func() {
		benchA = core.NewAnalyzer()
		cfg := corpus.DefaultConfig()
		cfg.Size = benchCorpusSize
		c, err := corpus.Generate(cfg)
		if err != nil {
			panic(err)
		}
		benchM = corpus.RunLinter(c, benchA.Registry, lint.Options{})
		benchMAll = corpus.RunLinter(c, benchA.Registry, lint.Options{IgnoreEffectiveDates: true})
	})
	nc := benchM.NCCount()
	total := len(benchM.Corpus.Entries)
	rate := float64(nc) / float64(total)
	if rate < 0.002 || rate > 0.025 {
		t.Errorf("bench corpus NC rate %.4f far from the paper's 0.0072", rate)
	}
	if benchMAll.NCCount() < 3*nc {
		t.Errorf("date ablation ratio too small: %d vs %d", benchMAll.NCCount(), nc)
	}
	_ = asn1der.TagUTF8String // assert substrate linkage
	_ = certgen.FieldSubjectCN
}

// ——— Appendix F.2: monitor tolerance over sampled NC Unicerts ———

func BenchmarkMonitorTolerance(b *testing.B) {
	_, m := sharedMeasurement(b)
	var sample []*x509cert.Certificate
	for i, e := range m.Corpus.Entries {
		if m.Noncompliant(i) {
			sample = append(sample, e.Cert)
		}
		if len(sample) >= 200 {
			break
		}
	}
	if len(sample) == 0 {
		b.Skip("no NC certificates in this draw")
	}
	b.ResetTimer()
	var rows []monitor.ToleranceRow
	for i := 0; i < b.N; i++ {
		rows = monitor.ToleranceExperiment(sample)
	}
	b.StopTimer()
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Monitor, fmt.Sprintf("%d", r.Sampled), fmt.Sprintf("%d", r.Found),
			fmt.Sprintf("%d", r.Missed), fmt.Sprintf("%d", r.Refused),
		})
	}
	printTable("Appendix F.2 (monitor tolerance over NC sample)", report.Table(
		[]string{"Monitor", "Sampled", "Found", "Missed", "Refused"}, cells))
}

// ——— §5.2 end-to-end: CRL spoofing through library parsers ———

func BenchmarkCRLSpoofing(b *testing.B) {
	caKey, err := x509cert.GenerateKey(811)
	if err != nil {
		b.Fatal(err)
	}
	leafKey, err := x509cert.GenerateKey(812)
	if err != nil {
		b.Fatal(err)
	}
	caDN := x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, "Spoof CA"))
	caDER, err := x509cert.BuildSelfSigned(&x509cert.Template{
		SerialNumber: big.NewInt(1), Issuer: caDN, Subject: caDN,
		NotBefore: time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:  time.Date(2034, 1, 1, 0, 0, 0, 0, time.UTC), IsCA: true,
	}, caKey)
	if err != nil {
		b.Fatal(err)
	}
	ca, err := x509cert.Parse(caDER)
	if err != nil {
		b.Fatal(err)
	}
	crafted := "http://ssl\x01test.com/ca.crl"
	stripped := "http://ssl.test.com/ca.crl"
	leafDER, err := x509cert.Build(&x509cert.Template{
		SerialNumber: big.NewInt(4242), Issuer: caDN,
		Subject:               x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, "victim.example")),
		NotBefore:             time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:              time.Date(2025, 4, 1, 0, 0, 0, 0, time.UTC),
		SAN:                   []x509cert.GeneralName{x509cert.DNSName("victim.example")},
		CRLDistributionPoints: []x509cert.GeneralName{x509cert.URIName(crafted)},
	}, caKey, leafKey)
	if err != nil {
		b.Fatal(err)
	}
	realCRL, _ := x509cert.BuildCRL(&x509cert.CRLTemplate{
		Issuer: caDN, ThisUpdate: time.Date(2025, 2, 1, 0, 0, 0, 0, time.UTC),
		Revoked: []x509cert.RevokedCertificate{{SerialNumber: big.NewInt(4242), RevocationDate: time.Date(2025, 1, 20, 0, 0, 0, 0, time.UTC)}},
	}, caKey)
	attackerCRL, _ := x509cert.BuildCRL(&x509cert.CRLTemplate{
		Issuer: caDN, ThisUpdate: time.Date(2025, 2, 1, 0, 0, 0, 0, time.UTC),
	}, caKey)
	net := revocation.NewNetwork()
	net.Publish(crafted, realCRL)
	net.Publish(stripped, attackerCRL)
	b.ResetTimer()
	var results []revocation.SpoofResult
	for i := 0; i < b.N; i++ {
		results = revocation.SpoofExperiment(net, ca, leafDER, crafted)
	}
	b.StopTimer()
	var rows [][]string
	for _, r := range results {
		rows = append(rows, []string{r.Library.String(), r.Status.String(), fmt.Sprintf("%v", r.Subverted)})
	}
	printTable("§5.2 CRL spoofing", report.Table([]string{"Library", "Revocation status", "Subverted"}, rows))
}

// ——— Ablation: hostname-verification policy (CN fallback + C-string semantics) ———

func BenchmarkAblationHostVerifyPolicy(b *testing.B) {
	caKey, _ := x509cert.GenerateKey(813)
	der, err := x509cert.Build(&x509cert.Template{
		SerialNumber: big.NewInt(3),
		Issuer:       x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, "HV CA")),
		Subject:      x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, "x")),
		NotBefore:    time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:     time.Date(2025, 4, 1, 0, 0, 0, 0, time.UTC),
		SAN:          []x509cert.GeneralName{x509cert.DNSName("victim.example\x00.attacker.site")},
	}, caKey, caKey)
	if err != nil {
		b.Fatal(err)
	}
	c, err := x509cert.Parse(der)
	if err != nil {
		b.Fatal(err)
	}
	var legacyOK, strictOK bool
	b.Run("legacy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			legacyOK = hostverify.Verify(hostverify.Legacy, c, "victim.example") == nil
		}
	})
	b.Run("strict", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			strictOK = hostverify.Verify(hostverify.Strict, c, "victim.example") == nil
		}
	})
	printTable("Ablation: hostname verification policy", fmt.Sprintf(
		"NUL-truncation identity: legacy verifier accepts=%v, strict verifier accepts=%v\n", legacyOK, strictOK))
}

// ——— TLS wire observation throughput ———

func BenchmarkTLSWireObserve(b *testing.B) {
	_, m := sharedMeasurement(b)
	chain := [][]byte{m.Corpus.Entries[0].DER}
	ch := &tlswire.ClientHello{ServerName: "observed.example"}
	var wire bytes.Buffer
	if err := tlswire.WriteRecord(&wire, tlswire.Record{Type: tlswire.TypeHandshake, Version: tlswire.VersionTLS12, Payload: ch.Marshal()}); err != nil {
		b.Fatal(err)
	}
	certMsg, err := tlswire.MarshalCertificate(chain)
	if err != nil {
		b.Fatal(err)
	}
	if err := tlswire.WriteRecord(&wire, tlswire.Record{Type: tlswire.TypeHandshake, Version: tlswire.VersionTLS12, Payload: certMsg}); err != nil {
		b.Fatal(err)
	}
	raw := wire.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tlswire.Observe(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// ——— §5.1 impact (3): parse failures over the NC corpus ———

func BenchmarkParseFailureImpact(b *testing.B) {
	_, m := sharedMeasurement(b)
	var ncDER [][]byte
	for i, e := range m.Corpus.Entries {
		if m.Noncompliant(i) {
			ncDER = append(ncDER, e.DER)
		}
	}
	if len(ncDER) == 0 {
		b.Skip("no NC certificates in this draw")
	}
	// Add the §5.1 crafted cases that trigger strict-parser failures
	// (invalid PrintableString, malformed UTF-8, odd-length BMPString).
	gen, err := certgen.New(99)
	if err != nil {
		b.Fatal(err)
	}
	for _, probe := range []struct {
		tag int
		raw []byte
	}{
		{asn1der.TagPrintableString, []byte("Bad@Orgÿ")},
		{asn1der.TagUTF8String, []byte{'O', 0xC3, 0x28}},
		{asn1der.TagBMPString, []byte{0x00, 0x41, 0x42}},
	} {
		tc, err := gen.GenerateRaw(certgen.FieldSubjectOrganization, probe.tag, probe.raw)
		if err != nil {
			b.Fatal(err)
		}
		ncDER = append(ncDER, tc.DER)
	}
	parsers := tlsimpl.All()
	failures := make([]int, len(parsers))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range failures {
			failures[j] = 0
		}
		for _, der := range ncDER {
			for j, p := range parsers {
				if _, err := p.Parse(der); err != nil {
					failures[j]++
				}
			}
		}
	}
	b.StopTimer()
	var rows [][]string
	for j, p := range parsers {
		rows = append(rows, []string{
			p.Library().String(),
			fmt.Sprintf("%d / %d", failures[j], len(ncDER)),
		})
	}
	printTable("§5.1 parse failures over NC corpus (TLS termination risk)", report.Table(
		[]string{"Library", "Complete parse failures"}, rows))
}
