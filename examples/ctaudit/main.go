// ctaudit: run a compact version of the paper's RQ1 measurement — log
// a synthetic Unicert population into the CT substrate (with
// precertificates), verify an inclusion proof, filter precerts the way
// §4.1 does, lint what remains, and print the taxonomy.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ctlog"
	"repro/internal/lint"
	"repro/internal/report"
)

func main() {
	// Generate a 1:10000-scale corpus (3,480 Unicerts).
	cfg := corpus.Config{Size: 3480, Seed: 2025, PrecertFraction: 0.10, VariantFraction: 0.004}
	c, err := corpus.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Submit everything — precertificates included — to a CT log.
	ctLog, err := ctlog.NewLog(99)
	if err != nil {
		log.Fatal(err)
	}
	ctLog.SetClock(func() time.Time { return time.Date(2025, 4, 1, 0, 0, 0, 0, time.UTC) })
	for _, e := range c.Entries {
		if _, err := ctLog.AddParsed(e.DER, false); err != nil {
			log.Fatal(err)
		}
	}
	for _, p := range c.Precerts {
		if _, err := ctLog.AddParsed(p.DER, true); err != nil {
			log.Fatal(err)
		}
	}
	sth, err := ctLog.STH()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CT log: %d entries, tree head %x…\n", sth.Size, sth.Root[:8])

	// Spot-check log integrity with an inclusion proof.
	proof, err := ctLog.ProveInclusion(0)
	if err != nil {
		log.Fatal(err)
	}
	entries, _ := ctLog.GetEntries(0, 1)
	ok := ctlog.VerifyInclusion(ctlog.LeafHash(entries[0].DER), 0, sth.Size, proof, sth.Root)
	fmt.Printf("inclusion proof for entry 0 verifies: %v\n", ok)

	// §4.1 filter: drop precertificates, keep leaf Unicerts.
	regular := ctLog.RegularCertificates()
	fmt.Printf("precert filter: %d of %d entries remain\n\n", len(regular), sth.Size)

	// Lint the population and print the headline tables.
	a := core.NewAnalyzer()
	m := corpus.RunLinter(c, a.Registry, lint.Options{})
	nc := m.NCCount()
	fmt.Printf("noncompliant: %d of %d (%s)\n\n", nc, len(c.Entries), report.Percent(nc, len(c.Entries)))
	fmt.Println(report.Table1(m.Table1(a.Registry), nc))
	fmt.Println(report.Table2(m.Table2(10)))
}
