// revocation: replay the §5.2 CRL-spoofing threat end to end. A
// compromised CA issues a certificate whose CRL distribution point
// embeds a control character; clients whose parsers rewrite the URL
// (PyOpenSSL's '.'-substitution) fetch the attacker's clean CRL and
// never learn the certificate was revoked.
package main

import (
	"fmt"
	"log"
	"math/big"
	"time"

	"repro/internal/revocation"
	"repro/internal/x509cert"
)

func main() {
	caKey, err := x509cert.GenerateKey(801)
	if err != nil {
		log.Fatal(err)
	}
	leafKey, err := x509cert.GenerateKey(802)
	if err != nil {
		log.Fatal(err)
	}
	caDN := x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, "Compromised CA"))
	caDER, err := x509cert.BuildSelfSigned(&x509cert.Template{
		SerialNumber: big.NewInt(1),
		Issuer:       caDN, Subject: caDN,
		NotBefore: time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:  time.Date(2034, 1, 1, 0, 0, 0, 0, time.UTC),
		IsCA:      true,
	}, caKey)
	if err != nil {
		log.Fatal(err)
	}
	ca, err := x509cert.Parse(caDER)
	if err != nil {
		log.Fatal(err)
	}

	// The crafted distribution point: "ssl\x01test.com". The CA's real
	// CRL (revoking our serial) lives there; the attacker controls the
	// control-stripped "ssl.test.com" and serves an empty CRL.
	craftedURL := "http://ssl\x01test.com/ca.crl"
	strippedURL := "http://ssl.test.com/ca.crl"

	leafDER, err := x509cert.Build(&x509cert.Template{
		SerialNumber:          big.NewInt(4242),
		Issuer:                caDN,
		Subject:               x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, "victim.example")),
		NotBefore:             time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:              time.Date(2025, 4, 1, 0, 0, 0, 0, time.UTC),
		SAN:                   []x509cert.GeneralName{x509cert.DNSName("victim.example")},
		CRLDistributionPoints: []x509cert.GeneralName{x509cert.URIName(craftedURL)},
	}, caKey, leafKey)
	if err != nil {
		log.Fatal(err)
	}

	realCRL, err := x509cert.BuildCRL(&x509cert.CRLTemplate{
		Issuer:     caDN,
		ThisUpdate: time.Date(2025, 2, 1, 0, 0, 0, 0, time.UTC),
		NextUpdate: time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC),
		Revoked: []x509cert.RevokedCertificate{
			{SerialNumber: big.NewInt(4242), RevocationDate: time.Date(2025, 1, 20, 0, 0, 0, 0, time.UTC)},
		},
	}, caKey)
	if err != nil {
		log.Fatal(err)
	}
	attackerCRL, err := x509cert.BuildCRL(&x509cert.CRLTemplate{
		Issuer:     caDN,
		ThisUpdate: time.Date(2025, 2, 1, 0, 0, 0, 0, time.UTC),
	}, caKey)
	if err != nil {
		log.Fatal(err)
	}

	net := revocation.NewNetwork()
	net.Publish(craftedURL, realCRL)
	net.Publish(strippedURL, attackerCRL)

	fmt.Println("certificate serial 4242 is revoked on the CA's CRL at the crafted URL")
	fmt.Printf("crafted CRLDP: %q\n\n", craftedURL)
	for _, res := range revocation.SpoofExperiment(net, ca, leafDER, craftedURL) {
		marker := ""
		if res.Subverted {
			marker = "  ← revocation silently disabled"
		}
		fmt.Printf("%-20s fetched %-35q status=%s%s\n", res.Library, res.URL, res.Status, marker)
	}
}
