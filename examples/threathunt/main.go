// threathunt: chain the three RQ3 threat scenarios end to end — forge
// a certificate for a victim domain, hide it from CT monitors, slip
// its TLS exchange past middlebox rules, and spoof the browser warning
// page a user would see.
package main

import (
	"fmt"
	"log"
	"math/big"
	"net"
	"time"

	"repro/internal/browser"
	"repro/internal/middlebox"
	"repro/internal/monitor"
	"repro/internal/x509cert"
)

func main() {
	caKey, err := x509cert.GenerateKey(71)
	if err != nil {
		log.Fatal(err)
	}
	leafKey, err := x509cert.GenerateKey(72)
	if err != nil {
		log.Fatal(err)
	}
	build := func(cn, san string, serial int64) *x509cert.Certificate {
		tpl := &x509cert.Template{
			SerialNumber: big.NewInt(serial),
			Issuer:       x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, "Compromised CA")),
			Subject:      x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, cn)),
			NotBefore:    time.Date(2025, 2, 1, 0, 0, 0, 0, time.UTC),
			NotAfter:     time.Date(2025, 5, 1, 0, 0, 0, 0, time.UTC),
			SAN:          []x509cert.GeneralName{x509cert.DNSName(san)},
		}
		der, err := x509cert.Build(tpl, caKey, leafKey)
		if err != nil {
			log.Fatal(err)
		}
		c, err := x509cert.Parse(der)
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	// Act 1 — mislead the CT monitors (§6.1): the forged certificate's
	// indexed fields embed a NUL, so the owner's queries miss it.
	forged := build("victim.example\x00.attacker.site", "victim.example\x00.attacker.site", 1)
	fmt.Println("Act 1: CT monitor misleading")
	for _, r := range monitor.MisleadExperiment(forged, "victim.example") {
		fmt.Printf("  %-18s concealed=%v (%s)\n", r.Monitor, r.Concealed, r.Detail)
	}

	// Act 2 — evade the middleboxes (§6.2): serve the forged chain over
	// an in-memory TLS-1.2-style exchange and test the blocklist.
	fmt.Println("\nAct 2: traffic obfuscation")
	evil := build("Evil\x00 Entity", "c2.attacker.site", 2)
	client, server := net.Pipe()
	go func() {
		h := &middlebox.Handshake{Chain: [][]byte{evil.Raw}}
		_ = h.Serve(server)
	}()
	chain, err := middlebox.ReadChain(client)
	if err != nil && len(chain) == 0 {
		log.Fatal(err)
	}
	observed, err := x509cert.Parse(chain[0])
	if err != nil {
		log.Fatal(err)
	}
	rule := middlebox.Rule{Field: "CN", Value: "Evil Entity"}
	for _, res := range middlebox.Evasion(observed, rule) {
		fmt.Printf("  %-9s rule CN=%q evaded=%v (saw CN=%q)\n", res.Engine, rule.Value, res.Evaded, res.Extract.CN)
	}

	// Act 3 — spoof the user (Appendix F.1): a bidi-crafted hostname in
	// the warning page.
	fmt.Println("\nAct 3: user spoofing")
	spoof := build("www.‮lapyap‬.com", "www.‮lapyap‬.com", 3)
	for _, e := range browser.Engines() {
		fmt.Printf("  %-18s %q\n", e, browser.WarningPage(e, spoof))
	}
}
