// libaudit: replay the paper's RQ2 hostname-confusion case study
// (§5.1) — craft a single certificate whose BMPString CN reads as
// "github.cn" to a byte-wise ASCII decoder, run it through all nine
// TLS library models, and show how each one reports the peer identity.
package main

import (
	"fmt"
	"log"

	"repro/internal/asn1der"
	"repro/internal/certgen"
	"repro/internal/tlsimpl"
)

func main() {
	gen, err := certgen.New(123)
	if err != nil {
		log.Fatal(err)
	}

	// BMPString content whose raw bytes spell an ASCII hostname.
	payload := []byte("github.cn")
	tc, err := gen.GenerateRaw(certgen.FieldSubjectCN, asn1der.TagBMPString, payload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("certificate CN: BMPString with content bytes \"github.cn\"")
	fmt.Println("a UCS-2 decoder sees CJK text; a byte-wise decoder sees a hostname")
	fmt.Println()

	for _, p := range tlsimpl.All() {
		out, err := p.Parse(tc.DER)
		if err != nil {
			fmt.Printf("%-20s parse failure: %v\n", p.Library(), err)
			continue
		}
		cn := "(none)"
		for _, a := range out.SubjectAttrs {
			if a.Name == "CN" {
				cn = fmt.Sprintf("%q", a.Value)
			}
		}
		verdict := ""
		if cn == `"github.cn"` {
			verdict = "  ← hostname-confusion: validates for github.cn"
		}
		fmt.Printf("%-20s CN=%s%s\n", p.Library(), cn, verdict)
	}

	// Second act: the §5.2 CRL-spoofing primitive against PyOpenSSL.
	fmt.Println("\nCRL distribution point with an embedded control character:")
	crl, err := gen.GenerateRaw(certgen.FieldCRLDistributionPoint, asn1der.TagIA5String, []byte("http://ssl\x01test.com"))
	if err != nil {
		log.Fatal(err)
	}
	for _, lib := range []tlsimpl.Library{tlsimpl.PyOpenSSL, tlsimpl.GoCrypto, tlsimpl.JavaSecurity} {
		p := tlsimpl.New(lib)
		if !p.Supports(tlsimpl.FieldCRLDP) {
			fmt.Printf("%-20s does not parse CRLDP\n", lib)
			continue
		}
		out, err := p.Parse(crl.DER)
		if err != nil {
			fmt.Printf("%-20s parse failure: %v\n", lib, err)
			continue
		}
		fmt.Printf("%-20s CRLDP=%v\n", lib, out.CRLDPValues)
	}
	fmt.Println("PyOpenSSL's '.'-substitution turns the bogus location into a live one —")
	fmt.Println("an attacker-chosen, unreachable CRL host becomes reachable, disabling revocation.")
}
