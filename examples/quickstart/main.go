// Quickstart: build a certificate with internationalized content, lint
// it against the 95 Unicert rules, and print what a careless issuer
// got wrong.
package main

import (
	"fmt"
	"log"
	"math/big"
	"time"

	"repro/internal/asn1der"
	"repro/internal/core"
	"repro/internal/lint"
	"repro/internal/strenc"
	"repro/internal/x509cert"
)

func main() {
	// 1. Keys (deterministic for the example).
	caKey, err := x509cert.GenerateKey(1)
	if err != nil {
		log.Fatal(err)
	}
	leafKey, err := x509cert.GenerateKey(2)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A Unicert with three classic mistakes: a BMPString-encoded
	// organization (T3 invalid encoding), a deceptive IDN SAN whose
	// decoded form carries a left-to-right mark (T1 invalid character),
	// and a VisibleString policy notice (the paper's most common lint).
	org, _ := strenc.Encode(strenc.UCS2, "株式会社 中国銀行")
	tpl := &x509cert.Template{
		SerialNumber: big.NewInt(42),
		Issuer:       x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, "Quickstart CA")),
		Subject: x509cert.SimpleDN(
			x509cert.TextATV(x509cert.OIDCommonName, "xn--www-hn0a.bank.example"),
			x509cert.RawATV(x509cert.OIDOrganizationName, asn1der.TagBMPString, org),
		),
		NotBefore: time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:  time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC),
		SAN:       []x509cert.GeneralName{x509cert.DNSName("xn--www-hn0a.bank.example")},
		Policies: []x509cert.PolicyInformation{{
			Policy:       asn1der.OID{2, 23, 140, 1, 2, 2},
			ExplicitText: []x509cert.DisplayText{{Tag: asn1der.TagVisibleString, Bytes: []byte("Relying party agreement")}},
		}},
	}
	der, err := x509cert.Build(tpl, caKey, leafKey)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Lint it.
	analyzer := core.NewAnalyzer()
	res, err := analyzer.LintDER(der, lint.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certificate is noncompliant: %v\n", res.Noncompliant())
	for _, f := range res.Failed() {
		fmt.Printf("  [%s/%s] %s: %s\n", f.Lint.Taxonomy.Group(), f.Lint.Severity, f.Lint.Name, f.Details)
	}

	// 4. Show why the SAN is dangerous: its U-label form.
	cert, _ := x509cert.Parse(der)
	for _, name := range cert.DNSNames() {
		fmt.Printf("SAN %q — syntactically valid Punycode, deceptive after conversion\n", name)
	}
}
