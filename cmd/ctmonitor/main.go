// Command ctmonitor demonstrates the monitor pipeline of §6.1 as a
// service: it starts an RFC 6962-style CT log over HTTP, submits a
// slice of the synthetic corpus (including a crafted forgery), syncs
// all five monitor models through the HTTP API, and answers queries —
// showing which monitors surface the forgery for its victim domain.
//
// The crawl path is the fault-tolerant one: with -fault-rate > 0 a
// seeded injector degrades the HTTP transport (5xx, drops, latency,
// truncated and corrupted bodies, stale STHs) and the sync must still
// index every parseable certificate, surfacing its retry/skip
// accounting in the report.
//
// Usage:
//
//	ctmonitor [-entries 200] [-query victim.example] [-batch 64]
//	          [-fault-rate 0.25] [-fault-seed 42]
//	          [-max-retries 4] [-timeout 10s]
package main

import (
	"context"
	"flag"
	"fmt"
	"math/big"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/corpus"
	"repro/internal/ctlog"
	"repro/internal/faultinject"
	"repro/internal/monitor"
	"repro/internal/report"
	"repro/internal/x509cert"
)

func main() {
	entries := flag.Int("entries", 200, "corpus certificates to log")
	query := flag.String("query", "victim.example", "owner query to replay against every monitor")
	batch := flag.Int("batch", 64, "get-entries batch size")
	faultRate := flag.Float64("fault-rate", 0, "probability of injecting a fault per HTTP request (0 disables)")
	faultSeed := flag.Int64("fault-seed", 42, "seed for the deterministic fault injector")
	maxRetries := flag.Int("max-retries", ctlog.DefaultMaxRetries, "HTTP retry attempts for retryable failures")
	timeout := flag.Duration("timeout", ctlog.DefaultTimeout, "per-request HTTP timeout")
	flag.Parse()

	// 1. Stand up the log.
	log, err := ctlog.NewLog(2025)
	if err != nil {
		fatal("%v", err)
	}
	srv := httptest.NewServer((&ctlog.Server{Log: log}).Handler())
	defer srv.Close()
	fmt.Printf("CT log serving at %s\n", srv.URL)

	// 2. Submit corpus certificates plus one crafted forgery for the
	// victim domain.
	c, err := corpus.Generate(corpus.Config{Size: *entries, Seed: 31})
	if err != nil {
		fatal("%v", err)
	}
	for _, e := range c.Entries {
		if _, err := log.AddParsed(e.DER, false); err != nil {
			fatal("%v", err)
		}
	}
	forged := buildForgery(*query)
	if _, err := log.AddParsed(forged, false); err != nil {
		fatal("%v", err)
	}
	sth, err := log.STH()
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("logged %d entries (tree head %x…)\n\n", sth.Size, sth.Root[:8])

	// 3. Every monitor syncs through the HTTP API — optionally through
	// the fault injector — and answers the owner's query.
	var transport http.RoundTripper
	var injector *faultinject.Transport
	if *faultRate > 0 {
		injector = faultinject.New(faultinject.Config{
			Seed: *faultSeed,
			Rate: *faultRate,
		}, nil)
		transport = injector
		fmt.Printf("fault injector armed: rate %.0f%%, seed %d\n\n", *faultRate*100, *faultSeed)
	}
	// The client treats 0 as "use the default", so translate the
	// flag's literal 0 into its explicit "no retries" value.
	retries := *maxRetries
	if retries == 0 {
		retries = -1
	}
	client := &ctlog.Client{
		Base:       srv.URL,
		HTTP:       &http.Client{Transport: transport},
		MaxRetries: retries,
		Timeout:    *timeout,
	}
	ctx := context.Background()
	var rows [][]string
	for _, caps := range monitor.Monitors() {
		if caps.Discontinued {
			rows = append(rows, []string{caps.Name, "-", "-", "-", "-", "service discontinued"})
			continue
		}
		m := monitor.New(caps)
		stats, err := m.SyncFromLog(ctx, client, monitor.SyncOptions{Batch: *batch})
		if err != nil {
			fatal("%s: %v", caps.Name, err)
		}
		res := m.Query(*query)
		verdict := fmt.Sprintf("%d certificate(s) found", len(res.IDs))
		if res.Refused {
			verdict = "query refused: " + res.Reason
		} else if len(res.IDs) == 0 {
			verdict = "forgery concealed"
		}
		rows = append(rows, []string{
			caps.Name,
			fmt.Sprintf("%d", stats.Indexed),
			fmt.Sprintf("%d", stats.ParseErrors),
			fmt.Sprintf("%d", stats.Retries),
			fmt.Sprintf("%d", stats.SkippedEntries),
			verdict,
		})
	}
	fmt.Println(report.Table(
		[]string{"Monitor", "Indexed", "Parse errors", "Retries", "Skipped", fmt.Sprintf("Query %q", *query)},
		rows))
	if injector != nil {
		st := injector.Stats()
		fmt.Printf("\ninjector: %d requests, %d faults", st.Requests, st.Total())
		for _, k := range faultinject.AllKinds() {
			if n := st.Faults[k]; n > 0 {
				fmt.Printf(", %s×%d", k, n)
			}
		}
		fmt.Println()
	}
}

// buildForgery crafts the §6.1 NUL-bearing certificate targeting the
// victim domain.
func buildForgery(victim string) []byte {
	key, err := x509cert.GenerateKey(777)
	if err != nil {
		fatal("%v", err)
	}
	crafted := victim + "\x00.attacker.site"
	der, err := x509cert.Build(&x509cert.Template{
		SerialNumber: big.NewInt(666),
		Issuer:       x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, "Compromised CA")),
		Subject:      x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, crafted)),
		NotBefore:    time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:     time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC),
		SAN:          []x509cert.GeneralName{x509cert.DNSName(crafted)},
	}, key, key)
	if err != nil {
		fatal("%v", err)
	}
	return der
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ctmonitor: "+format+"\n", args...)
	os.Exit(1)
}
