// Command ctmonitor demonstrates the monitor pipeline of §6.1 as a
// service: it starts an RFC 6962-style CT log over HTTP, submits a
// slice of the synthetic corpus (including a crafted forgery), syncs
// all five monitor models through the HTTP API, and answers queries —
// showing which monitors surface the forgery for its victim domain.
//
// The crawl path is the fault-tolerant one: with -fault-rate > 0 a
// seeded injector degrades the HTTP transport (5xx, drops, latency,
// truncated and corrupted bodies, stale STHs) and the sync must still
// index every parseable certificate, surfacing its retry/skip
// accounting in the report.
//
// Observability: the whole run is instrumented through internal/obs.
// -metrics-addr serves /metrics (Prometheus text), /debug/vars, and
// /debug/pprof while the crawl runs (the log front end serves the same
// endpoints); -stats-json prints the final per-monitor SyncStats plus
// a metrics snapshot as one JSON object on stdout (human output moves
// to stderr); -linger keeps the process and its metrics endpoint alive
// after the crawl so scrapers can collect the final state.
//
// Usage:
//
//	ctmonitor [-entries 200] [-query victim.example] [-batch 64]
//	          [-fault-rate 0.25] [-fault-seed 42]
//	          [-max-retries 4] [-timeout 10s]
//	          [-metrics-addr :9090] [-stats-json] [-linger 30s]
//	          [-progress 10s]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/big"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/corpus"
	"repro/internal/ctlog"
	"repro/internal/faultinject"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/x509cert"
)

func main() {
	entries := flag.Int("entries", 200, "corpus certificates to log")
	query := flag.String("query", "victim.example", "owner query to replay against every monitor")
	batch := flag.Int("batch", 64, "get-entries batch size")
	faultRate := flag.Float64("fault-rate", 0, "probability of injecting a fault per HTTP request (0 disables)")
	faultSeed := flag.Int64("fault-seed", 42, "seed for the deterministic fault injector")
	maxRetries := flag.Int("max-retries", ctlog.DefaultMaxRetries, "HTTP retry attempts for retryable failures")
	timeout := flag.Duration("timeout", ctlog.DefaultTimeout, "per-request HTTP timeout")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof on this address (e.g. :9090)")
	statsJSON := flag.Bool("stats-json", false, "print final SyncStats + metrics snapshot as one JSON object on stdout")
	linger := flag.Duration("linger", 0, "keep serving metrics this long after the crawl finishes")
	progressEvery := flag.Duration("progress", 0, "emit a progress line to stderr every interval (0 disables)")
	flag.Parse()

	// Human-readable output goes to stdout normally, to stderr when
	// stdout carries the JSON object.
	out := io.Writer(os.Stdout)
	if *statsJSON {
		out = os.Stderr
	}

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(0)
	if *metricsAddr != "" {
		serveMetrics(*metricsAddr, reg)
	}
	if *progressEvery > 0 {
		prog := obs.NewProgress(os.Stderr, reg, *progressEvery, "monitor_", "ctlog_")
		prog.Start()
		defer prog.Stop()
	}

	// 1. Stand up the log; its front end serves the same observability
	// endpoints alongside the ct/v1 API.
	log, err := ctlog.NewLog(2025)
	if err != nil {
		fatal("%v", err)
	}
	srv := httptest.NewServer((&ctlog.Server{Log: log, Obs: reg}).Handler())
	defer srv.Close()
	fmt.Fprintf(out, "CT log serving at %s\n", srv.URL)

	// 2. Submit corpus certificates plus one crafted forgery for the
	// victim domain.
	c, err := corpus.Generate(corpus.Config{Size: *entries, Seed: 31})
	if err != nil {
		fatal("%v", err)
	}
	for _, e := range c.Entries {
		if _, err := log.AddParsed(e.DER, false); err != nil {
			fatal("%v", err)
		}
	}
	forged := buildForgery(*query)
	if _, err := log.AddParsed(forged, false); err != nil {
		fatal("%v", err)
	}
	sth, err := log.STH()
	if err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(out, "logged %d entries (tree head %x…)\n\n", sth.Size, sth.Root[:8])

	// 3. Every monitor syncs through the HTTP API — optionally through
	// the fault injector — and answers the owner's query.
	var transport http.RoundTripper
	var injector *faultinject.Transport
	if *faultRate > 0 {
		injector = faultinject.New(faultinject.Config{
			Seed: *faultSeed,
			Rate: *faultRate,
		}, nil)
		transport = injector
		fmt.Fprintf(out, "fault injector armed: rate %.0f%%, seed %d\n\n", *faultRate*100, *faultSeed)
	}
	// The client treats 0 as "use the default", so translate the
	// flag's literal 0 into its explicit "no retries" value.
	retries := *maxRetries
	if retries == 0 {
		retries = -1
	}
	client := &ctlog.Client{
		Base:       srv.URL,
		HTTP:       &http.Client{Transport: transport},
		MaxRetries: retries,
		Timeout:    *timeout,
		Obs:        reg,
		Tracer:     tracer,
	}
	ctx := context.Background()
	var rows [][]string
	perMonitor := make(map[string]monitor.SyncStats)
	var totals monitor.SyncStats
	for _, caps := range monitor.Monitors() {
		if caps.Discontinued {
			rows = append(rows, []string{caps.Name, "-", "-", "-", "-", "service discontinued"})
			continue
		}
		m := monitor.New(caps)
		stats, err := m.SyncFromLog(ctx, client, monitor.SyncOptions{Batch: *batch, Obs: reg, Tracer: tracer})
		if err != nil {
			fatal("%s: %v", caps.Name, err)
		}
		perMonitor[caps.Name] = stats
		totals.Fetched += stats.Fetched
		totals.Precerts += stats.Precerts
		totals.ParseErrors += stats.ParseErrors
		totals.Indexed += stats.Indexed
		totals.Retries += stats.Retries
		totals.SkippedEntries += stats.SkippedEntries
		totals.Bisections += stats.Bisections
		totals.Duration += stats.Duration
		res := m.Query(*query)
		verdict := fmt.Sprintf("%d certificate(s) found", len(res.IDs))
		if res.Refused {
			verdict = "query refused: " + res.Reason
		} else if len(res.IDs) == 0 {
			verdict = "forgery concealed"
		}
		rows = append(rows, []string{
			caps.Name,
			fmt.Sprintf("%d", stats.Indexed),
			fmt.Sprintf("%d", stats.ParseErrors),
			fmt.Sprintf("%d", stats.Retries),
			fmt.Sprintf("%d", stats.SkippedEntries),
			verdict,
		})
	}
	fmt.Fprintln(out, report.Table(
		[]string{"Monitor", "Indexed", "Parse errors", "Retries", "Skipped", fmt.Sprintf("Query %q", *query)},
		rows))
	if injector != nil {
		st := injector.Stats()
		fmt.Fprintf(out, "\ninjector: %d requests, %d faults", st.Requests, st.Total())
		for _, k := range faultinject.AllKinds() {
			if n := st.Faults[k]; n > 0 {
				fmt.Fprintf(out, ", %s×%d", k, n)
			}
		}
		fmt.Fprintln(out)
	}

	if *statsJSON {
		obj := struct {
			Monitors map[string]monitor.SyncStats `json:"monitors"`
			Totals   monitor.SyncStats            `json:"totals"`
			Metrics  map[string]any               `json:"metrics"`
		}{perMonitor, totals, reg.VarsSnapshot()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(obj); err != nil {
			fatal("%v", err)
		}
	}
	if *linger > 0 {
		fmt.Fprintf(os.Stderr, "ctmonitor: lingering %v for scrapers\n", *linger)
		time.Sleep(*linger)
	}
}

// serveMetrics mounts the registry's exposition endpoints on a
// dedicated listener; the process serves them until it exits.
func serveMetrics(addr string, reg *obs.Registry) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal("metrics listener: %v", err)
	}
	fmt.Fprintf(os.Stderr, "ctmonitor: metrics at http://%s/metrics\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, reg.Handler()); err != nil {
			fmt.Fprintf(os.Stderr, "ctmonitor: metrics server: %v\n", err)
		}
	}()
}

// buildForgery crafts the §6.1 NUL-bearing certificate targeting the
// victim domain.
func buildForgery(victim string) []byte {
	key, err := x509cert.GenerateKey(777)
	if err != nil {
		fatal("%v", err)
	}
	crafted := victim + "\x00.attacker.site"
	der, err := x509cert.Build(&x509cert.Template{
		SerialNumber: big.NewInt(666),
		Issuer:       x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, "Compromised CA")),
		Subject:      x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, crafted)),
		NotBefore:    time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:     time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC),
		SAN:          []x509cert.GeneralName{x509cert.DNSName(crafted)},
	}, key, key)
	if err != nil {
		fatal("%v", err)
	}
	return der
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ctmonitor: "+format+"\n", args...)
	os.Exit(1)
}
