// Command ctmonitor demonstrates the monitor pipeline of §6.1 as a
// service: it starts an RFC 6962-style CT log over HTTP, submits a
// slice of the synthetic corpus (including a crafted forgery), syncs
// monitor models through the HTTP API, and answers queries — showing
// which monitors surface the forgery for its victim domain.
//
// The crawl path is the fault-tolerant one: with -fault-rate > 0 a
// seeded injector degrades the HTTP transport (5xx, drops, latency,
// truncated and corrupted bodies, stale STHs; -fault-kinds opts into
// hang and reset) and the sync must still index every parseable
// certificate, surfacing its retry/skip accounting in the report.
//
// Production-hardening surface:
//
//   - The log front end and the -metrics-addr listener run under
//     internal/serve: hardened http.Server timeouts, /healthz and
//     /readyz probes, and graceful drain on SIGINT/SIGTERM
//     (-drain bounds the drain).
//   - -max-inflight and -rate-limit arm the log's overload shedding
//     (503/429 + Retry-After, counted in ctlog_server_shed_total).
//   - -breaker-threshold arms the client's circuit breaker so a dying
//     log is probed, not hammered.
//   - -checkpoint-file persists each monitor's crawl position
//     crash-safely; a restarted process resumes instead of refetching
//     (SyncStats.ResumedFrom in -stats-json shows the resume point).
//   - -supervise wraps each crawl in a panic-recovering supervisor
//     with capped exponential restart backoff.
//
// On SIGTERM mid-crawl the process checkpoints, reports what it
// crawled, and exits 0 — the next run picks up where it stopped.
//
// Observability: the whole run is instrumented through internal/obs.
// -metrics-addr serves /metrics (Prometheus text), /debug/vars, and
// /debug/pprof while the crawl runs (the log front end serves the same
// endpoints); -stats-json prints the final per-monitor SyncStats plus
// a metrics snapshot as one JSON object on stdout (human output moves
// to stderr); -linger keeps the process and its metrics endpoint alive
// after the crawl so scrapers can collect the final state.
//
// Usage:
//
//	ctmonitor [-entries 200] [-query victim.example] [-batch 64]
//	          [-listen 127.0.0.1:0] [-drain 10s]
//	          [-fault-rate 0.25] [-fault-seed 42] [-fault-kinds hang,reset]
//	          [-max-retries 4] [-timeout 10s]
//	          [-max-inflight 64] [-rate-limit 100] [-rate-burst 10]
//	          [-breaker-threshold 5] [-breaker-cooldown 30s]
//	          [-checkpoint-file /tmp/ctmonitor.ckpt] [-supervise]
//	          [-monitor crt.sh] [-metrics-addr :9090] [-stats-json]
//	          [-linger 30s] [-progress 10s]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/big"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/corpus"
	"repro/internal/ctlog"
	"repro/internal/faultinject"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/x509cert"
)

func main() {
	entries := flag.Int("entries", 200, "corpus certificates to log")
	query := flag.String("query", "victim.example", "owner query to replay against every monitor")
	batch := flag.Int("batch", 64, "get-entries batch size")
	listen := flag.String("listen", "127.0.0.1:0", "address for the CT log front end")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline for the HTTP servers")
	faultRate := flag.Float64("fault-rate", 0, "probability of injecting a fault per HTTP request (0 disables)")
	faultSeed := flag.Int64("fault-seed", 42, "seed for the deterministic fault injector")
	faultKinds := flag.String("fault-kinds", "", "comma-separated fault kinds (default: the standard mix; hang and reset are opt-in)")
	maxRetries := flag.Int("max-retries", ctlog.DefaultMaxRetries, "HTTP retry attempts for retryable failures")
	timeout := flag.Duration("timeout", ctlog.DefaultTimeout, "per-request HTTP timeout")
	maxInflight := flag.Int("max-inflight", 0, "cap on concurrently served ct/v1 requests; excess sheds 503 (0 = unlimited)")
	rateLimit := flag.Float64("rate-limit", 0, "sustained ct/v1 requests/second budget; excess sheds 429 (0 = unlimited)")
	rateBurst := flag.Int("rate-burst", 0, "token-bucket burst for -rate-limit (0 = max(1, ceil(rate)))")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive retryable failures that open the client's circuit breaker (0 disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", ctlog.DefaultBreakerCooldown, "how long an open breaker waits before a half-open probe")
	checkpointFile := flag.String("checkpoint-file", "", "crash-safe crawl checkpoint path prefix (one file per monitor)")
	supervise := flag.Bool("supervise", false, "wrap each crawl in a panic-recovering supervisor with restart backoff")
	audit := flag.Bool("audit", false, "verify Merkle inclusion/consistency proofs for every crawl; a proof failure is terminal (single log) or lands the log distrusted (fleet)")
	sthStoreDir := flag.String("sth-store-dir", "", "persist each crawl's last verified tree head (CRC-sealed, crash-safe) in this directory; resumes re-anchor on it (requires -audit)")
	monitorFilter := flag.String("monitor", "", "comma-separated monitor name filter (substring match; empty = all)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof on this address (e.g. :9090)")
	statsJSON := flag.Bool("stats-json", false, "print final SyncStats + metrics snapshot as one JSON object on stdout")
	linger := flag.Duration("linger", 0, "keep serving metrics this long after the crawl finishes")
	progressEvery := flag.Duration("progress", 0, "emit a progress line to stderr every interval (0 disables)")
	fleetLogs := flag.String("logs", "", "fleet mode: comma-separated name[:profile] log specs (profiles: clean, flaky, hang, poison); empty runs the single-log pipeline")
	fleetQuorum := flag.Int("fleet-quorum", 0, "fleet mode: non-stalled logs required for /readyz (0 = majority)")
	checkpointDir := flag.String("checkpoint-dir", "", "fleet mode: directory for per-log crash-safe checkpoints (one advisory-locked file per log)")
	fleetQueue := flag.Int("fleet-queue", 0, "fleet mode: bounded entry-feed depth shared by all crawls (0 = 256)")
	fleetStallAfter := flag.Duration("fleet-stall-after", 0, "fleet mode: mark a log stalled when its checkpoint stops advancing for this long (0 disables age-based stalling)")
	indexDir := flag.String("index-dir", "", "fleet mode: persist a queryable certificate index (LSM segment files) in this directory")
	queryAddr := flag.String("query-addr", "", "fleet mode: serve the /ct/v1/query lookup API on this address (requires -index-dir)")
	queryRateLimit := flag.Float64("query-rate-limit", 0, "sustained query requests/second budget; excess sheds 429 (0 = unlimited)")
	queryBurst := flag.Int("query-burst", 0, "token-bucket burst for -query-rate-limit")
	queryMaxInflight := flag.Int("query-max-inflight", 0, "cap on concurrently served queries; excess sheds 503 (0 = unlimited)")
	journalPath := flag.String("journal", "", "append schema-versioned JSONL audit events (sync, health, breaker, checkpoint, shed) to this file")
	flightDir := flag.String("flight-dir", "", "write flight-recorder dumps (JSONL) here on panic, quarantine, breaker-open, fleet transitions, SIGQUIT, and degraded exit")
	flag.Parse()

	// SIGINT/SIGTERM cancel this context; everything below — servers
	// and crawls alike — drains off it.
	ctx, stop := serve.SignalContext(context.Background())
	defer stop()

	// Human-readable output goes to stdout normally, to stderr when
	// stdout carries the JSON object.
	out := io.Writer(os.Stdout)
	if *statsJSON {
		out = os.Stderr
	}

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(0)

	// The journal is the run's append-only audit trail; the flight
	// recorder always records into its in-memory rings and dumps to
	// -flight-dir when set. Journal lines are written whole per event,
	// so the os.Exit paths below lose nothing.
	var journal *obs.Journal
	if *journalPath != "" {
		j, err := obs.OpenJournal(*journalPath, reg)
		if err != nil {
			fatal("journal: %v", err)
		}
		journal = j
		defer journal.Close()
	}
	flight := obs.NewFlight(*flightDir, 0, reg)
	flight.Journal = journal

	// SIGQUIT dumps the flight recorder and keeps running — the
	// "what is it doing right now" probe for a live process.
	sigquit := make(chan os.Signal, 1)
	signal.Notify(sigquit, syscall.SIGQUIT)
	go func() {
		for range sigquit {
			if path, err := flight.Trigger("sigquit"); err == nil && path != "" {
				fmt.Fprintf(os.Stderr, "ctmonitor: flight dump: %s\n", path)
			}
		}
	}()

	// Fleet mode replaces the single-log pipeline wholesale: N in-process
	// logs, one supervised crawl worker per log, fleet-wide dedup and
	// health. Everything below this block is the single-log path.
	if *sthStoreDir != "" {
		if !*audit {
			fatal("-sth-store-dir requires -audit")
		}
		if err := os.MkdirAll(*sthStoreDir, 0o755); err != nil {
			fatal("sth store dir: %v", err)
		}
	}

	if *fleetLogs != "" {
		code := runFleet(ctx, out, reg, tracer, fleetParams{
			specs:            *fleetLogs,
			entries:          *entries,
			batch:            *batch,
			drain:            *drain,
			faultSeed:        *faultSeed,
			timeout:          *timeout,
			maxRetries:       *maxRetries,
			breakerThreshold: *breakerThreshold,
			breakerCooldown:  *breakerCooldown,
			rateLimit:        *rateLimit,
			rateBurst:        *rateBurst,
			checkpointDir:    *checkpointDir,
			audit:            *audit,
			sthStoreDir:      *sthStoreDir,
			quorum:           *fleetQuorum,
			queueDepth:       *fleetQueue,
			stallAfter:       *fleetStallAfter,
			metricsAddr:      *metricsAddr,
			indexDir:         *indexDir,
			queryAddr:        *queryAddr,
			queryRateLimit:   *queryRateLimit,
			queryBurst:       *queryBurst,
			queryMaxInflight: *queryMaxInflight,
			statsJSON:        *statsJSON,
			query:            *query,
			monitorFilter:    *monitorFilter,
			progressEvery:    *progressEvery,
			journal:          journal,
			flight:           flight,
		})
		stop()
		journal.Close()
		os.Exit(code)
	}

	// crawling flips once the first sync begins; the metrics listener's
	// /readyz reports it.
	var crawling atomic.Bool
	if *metricsAddr != "" {
		serveMetrics(ctx, *metricsAddr, reg, journal, *drain, func() error {
			if !crawling.Load() {
				return fmt.Errorf("no crawl started yet")
			}
			return nil
		}, nil)
	}
	var prog *obs.Progress
	if *progressEvery > 0 {
		prog = obs.NewProgress(os.Stderr, reg, *progressEvery, "monitor_", "ctlog_")
		prog.Start()
		defer prog.Stop()
	}

	// 1. Stand up the log behind the hardened lifecycle wrapper; its
	// front end serves the observability endpoints alongside the ct/v1
	// API and sheds when -max-inflight/-rate-limit are armed.
	log, err := ctlog.NewLog(2025)
	if err != nil {
		fatal("%v", err)
	}
	frontend := &ctlog.Server{
		Log:         log,
		Obs:         reg,
		MaxInFlight: *maxInflight,
		RateLimit:   *rateLimit,
		RateBurst:   *rateBurst,
		Journal:     journal,
		Name:        "ctlog",
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal("log listener: %v", err)
	}
	logSrv := serve.New(frontend.Handler(), serve.Config{
		Name:         "ctlog",
		DrainTimeout: *drain,
		Obs:          reg,
		Journal:      journal,
	})
	logDone := make(chan error, 1)
	go func() { logDone <- logSrv.Run(ctx, ln) }()
	baseURL := "http://" + ln.Addr().String()
	fmt.Fprintf(out, "CT log serving at %s\n", baseURL)

	// 2. Submit corpus certificates plus one crafted forgery for the
	// victim domain. The corpus is seeded, so a restarted process
	// rebuilds an identical log and a checkpointed crawl can resume
	// against it.
	c, err := corpus.Generate(corpus.Config{Size: *entries, Seed: 31})
	if err != nil {
		fatal("%v", err)
	}
	for _, e := range c.Entries {
		if _, err := log.AddParsed(e.DER, false); err != nil {
			fatal("%v", err)
		}
	}
	forged := buildForgery(*query)
	if _, err := log.AddParsed(forged, false); err != nil {
		fatal("%v", err)
	}
	sth, err := log.STH()
	if err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(out, "logged %d entries (tree head %x…)\n\n", sth.Size, sth.Root[:8])

	// 3. Every selected monitor syncs through the HTTP API — optionally
	// through the fault injector — and answers the owner's query.
	var transport http.RoundTripper
	var injector *faultinject.Transport
	kinds, err := faultinject.ParseKinds(*faultKinds)
	if err != nil {
		fatal("%v", err)
	}
	if *faultRate > 0 {
		injector = faultinject.New(faultinject.Config{
			Seed:  *faultSeed,
			Rate:  *faultRate,
			Kinds: kinds,
		}, nil)
		transport = injector
		fmt.Fprintf(out, "fault injector armed: rate %.0f%%, seed %d\n\n", *faultRate*100, *faultSeed)
	}
	// The client treats 0 as "use the default", so translate the
	// flag's literal 0 into its explicit "no retries" value.
	retries := *maxRetries
	if retries == 0 {
		retries = -1
	}
	client := &ctlog.Client{
		Base:       baseURL,
		HTTP:       &http.Client{Transport: transport},
		MaxRetries: retries,
		Timeout:    *timeout,
		Obs:        reg,
		Tracer:     tracer,
	}
	if *breakerThreshold > 0 {
		client.Breaker = &ctlog.Breaker{Threshold: *breakerThreshold, Cooldown: *breakerCooldown}
	}

	var rows [][]string
	perMonitor := make(map[string]monitor.SyncStats)
	var totals monitor.SyncStats
	interrupted := false
	hadError := false
	for _, caps := range monitor.Monitors() {
		if !selected(caps.Name, *monitorFilter) {
			continue
		}
		if caps.Discontinued {
			rows = append(rows, []string{caps.Name, "-", "-", "-", "-", "service discontinued"})
			continue
		}
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		m := monitor.New(caps)
		opts := monitor.SyncOptions{
			Batch: *batch, Obs: reg, Tracer: tracer,
			Name: caps.Name, Journal: journal, Flight: flight,
			Audit: *audit,
		}
		if *checkpointFile != "" {
			opts.Checkpoints = &monitor.FileCheckpointStore{Path: *checkpointFile + "." + slug(caps.Name)}
		}
		if *sthStoreDir != "" {
			opts.STHStore = &monitor.FileSTHStore{Path: filepath.Join(*sthStoreDir, slug(caps.Name)+".sth")}
		}
		var stats monitor.SyncStats
		first := true
		crawl := func(ctx context.Context) error {
			crawling.Store(true)
			s, err := m.SyncFromLog(ctx, client, opts)
			// ResumedFrom is only meaningful for the first attempt;
			// supervisor restarts resume from in-memory state.
			if first {
				stats.ResumedFrom = s.ResumedFrom
				first = false
			}
			addStats(&stats, s)
			return err
		}
		var cerr error
		if *supervise {
			cerr = monitor.Supervise(ctx, monitor.SupervisorOptions{
				Obs:    reg,
				Flight: flight,
				// A failed Merkle proof cannot be restarted into success;
				// surface it immediately instead of burning the budget.
				Terminal: func(err error) bool { return errors.Is(err, monitor.ErrProofFailure) },
				OnRestart: func(r monitor.Restart) {
					fmt.Fprintf(os.Stderr, "ctmonitor: %s crawl restart %d after: %v\n", caps.Name, r.Attempt, r.Err)
				},
			}, crawl)
		} else {
			cerr = crawl(ctx)
		}
		perMonitor[caps.Name] = stats
		addStats(&totals, stats)
		verdict := ""
		switch {
		case cerr != nil && ctx.Err() != nil:
			interrupted = true
			verdict = "crawl interrupted (checkpointed)"
			fmt.Fprintf(os.Stderr, "ctmonitor: %s crawl interrupted: %v\n", caps.Name, cerr)
		case cerr != nil:
			hadError = true
			verdict = "crawl failed: " + cerr.Error()
			fmt.Fprintf(os.Stderr, "ctmonitor: %s crawl failed: %v\n", caps.Name, cerr)
		default:
			res := m.Query(*query)
			verdict = fmt.Sprintf("%d certificate(s) found", len(res.IDs))
			if res.Refused {
				verdict = "query refused: " + res.Reason
			} else if len(res.IDs) == 0 {
				verdict = "forgery concealed"
			}
		}
		rows = append(rows, []string{
			caps.Name,
			fmt.Sprintf("%d", stats.Indexed),
			fmt.Sprintf("%d", stats.ParseErrors),
			fmt.Sprintf("%d", stats.Retries),
			fmt.Sprintf("%d", stats.SkippedEntries),
			verdict,
		})
		if interrupted {
			break
		}
	}
	fmt.Fprintln(out, report.Table(
		[]string{"Monitor", "Indexed", "Parse errors", "Retries", "Skipped", fmt.Sprintf("Query %q", *query)},
		rows))
	if injector != nil {
		st := injector.Stats()
		fmt.Fprintf(out, "\ninjector: %d requests, %d faults", st.Requests, st.Total())
		for _, k := range append(faultinject.AllKinds(), faultinject.Hang, faultinject.Reset, faultinject.ProofTamper, faultinject.SthEquivocate) {
			if n := st.Faults[k]; n > 0 {
				fmt.Fprintf(out, ", %s×%d", k, n)
			}
		}
		fmt.Fprintln(out)
	}

	if *statsJSON {
		obj := struct {
			Entries     int                          `json:"entries"`
			Interrupted bool                         `json:"interrupted"`
			Monitors    map[string]monitor.SyncStats `json:"monitors"`
			Totals      monitor.SyncStats            `json:"totals"`
			Metrics     map[string]any               `json:"metrics"`
		}{sth.Size, interrupted, perMonitor, totals, reg.VarsSnapshot()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(obj); err != nil {
			fatal("%v", err)
		}
	}
	if *linger > 0 && !interrupted {
		fmt.Fprintf(os.Stderr, "ctmonitor: lingering %v for scrapers\n", *linger)
		select {
		case <-time.After(*linger):
		case <-ctx.Done():
		}
	}
	// Retire the log front end gracefully; Run has already begun the
	// drain if a signal arrived.
	stop()
	if err := logSrv.Shutdown(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "ctmonitor: log shutdown: %v\n", err)
	}
	<-logDone
	if hadError && !interrupted {
		// os.Exit skips defers: flush the progress line and capture the
		// failing run's flight rings before going down degraded.
		_, _ = flight.Trigger("degraded-exit")
		prog.Stop()
		journal.Close()
		os.Exit(1)
	}
}

// addStats accumulates src's counters into dst. ResumedFrom is
// deliberately excluded — the caller pins it to the first attempt.
func addStats(dst *monitor.SyncStats, src monitor.SyncStats) {
	dst.Fetched += src.Fetched
	dst.Precerts += src.Precerts
	dst.ParseErrors += src.ParseErrors
	dst.Indexed += src.Indexed
	dst.Retries += src.Retries
	dst.SkippedEntries += src.SkippedEntries
	dst.Quarantined += src.Quarantined
	dst.CheckpointErrors += src.CheckpointErrors
	dst.Bisections += src.Bisections
	dst.Audited += src.Audited
	dst.ProofFailures += src.ProofFailures
	dst.Duration += src.Duration
}

// selected applies the -monitor filter: empty matches everything,
// otherwise any comma-separated term must appear in the name
// (case-insensitive).
func selected(name, filter string) bool {
	if strings.TrimSpace(filter) == "" {
		return true
	}
	for _, term := range strings.Split(filter, ",") {
		term = strings.TrimSpace(term)
		if term != "" && strings.Contains(strings.ToLower(name), strings.ToLower(term)) {
			return true
		}
	}
	return false
}

// slug turns a monitor name into a filename-safe checkpoint suffix.
func slug(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}

// serveMetrics mounts the registry's exposition endpoints — plus any
// extra debug mounts (e.g. /debug/fleet) — on a dedicated hardened
// listener that drains with the process.
func serveMetrics(ctx context.Context, addr string, reg *obs.Registry, journal *obs.Journal, drain time.Duration, ready func() error, mounts map[string]http.Handler) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal("metrics listener: %v", err)
	}
	h := http.Handler(reg.Handler())
	if len(mounts) > 0 {
		mux := http.NewServeMux()
		for path, mh := range mounts {
			mux.Handle(path, mh)
		}
		mux.Handle("/", h)
		h = mux
	}
	srv := serve.New(h, serve.Config{
		Name:         "metrics",
		DrainTimeout: drain,
		Ready:        ready,
		Obs:          reg,
		Journal:      journal,
	})
	fmt.Fprintf(os.Stderr, "ctmonitor: metrics at http://%s/metrics\n", ln.Addr())
	go func() {
		if err := srv.Run(ctx, ln); err != nil {
			fmt.Fprintf(os.Stderr, "ctmonitor: metrics server: %v\n", err)
		}
	}()
}

// buildForgery crafts the §6.1 NUL-bearing certificate targeting the
// victim domain.
func buildForgery(victim string) []byte {
	key, err := x509cert.GenerateKey(777)
	if err != nil {
		fatal("%v", err)
	}
	crafted := victim + "\x00.attacker.site"
	der, err := x509cert.Build(&x509cert.Template{
		SerialNumber: big.NewInt(666),
		Issuer:       x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, "Compromised CA")),
		Subject:      x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, crafted)),
		NotBefore:    time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:     time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC),
		SAN:          []x509cert.GeneralName{x509cert.DNSName(crafted)},
	}, key, key)
	if err != nil {
		fatal("%v", err)
	}
	return der
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ctmonitor: "+format+"\n", args...)
	os.Exit(1)
}
