package main

// Fleet mode: ctmonitor stands up several in-process CT logs — each
// with its own fault profile — and crawls them all through
// internal/fleet, one supervised worker per log, with cross-log dedup,
// bounded-feed backpressure, per-log crash-safe checkpoints, and the
// quorum-gated /readyz. This is the multi-log production shape of the
// §6.1 pipeline: one sick log degrades the fleet, it does not kill it.
//
// Log windows deliberately OVERLAP: the corpus is split into per-log
// slices that each extend half a stride into their neighbours, and the
// crafted forgery is submitted to every log, so the run always
// exercises the dedup path with a known shape.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/ctlog"
	"repro/internal/faultinject"
	"repro/internal/fleet"
	"repro/internal/index"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/x509cert"
)

// fleetParams carries the flag values fleet mode consumes.
type fleetParams struct {
	specs            string
	entries          int
	batch            int
	drain            time.Duration
	faultSeed        int64
	timeout          time.Duration
	maxRetries       int
	breakerThreshold int
	breakerCooldown  time.Duration
	rateLimit        float64
	rateBurst        int
	checkpointDir    string
	audit            bool
	sthStoreDir      string
	quorum           int
	queueDepth       int
	stallAfter       time.Duration
	metricsAddr      string
	indexDir         string
	queryAddr        string
	queryRateLimit   float64
	queryBurst       int
	queryMaxInflight int
	statsJSON        bool
	query            string
	monitorFilter    string
	progressEvery    time.Duration
	journal          *obs.Journal
	flight           *obs.Flight
}

// SLO policy for fleet mode. Windows are short because a ctmonitor run
// is short — a production deploy would stretch these to SRE-book spans
// (5m/1h) without touching the engine.
const (
	sloTickEvery  = 500 * time.Millisecond
	sloFastWindow = 10 * time.Second
	sloSlowWindow = 60 * time.Second
	// sloErrObjective is the tolerated retryable share of CT log
	// attempts; warn at 2x budget burn, page at 10x on both windows.
	sloErrObjective = 0.05
	sloBurnWarn     = 2
	sloBurnPage     = 10
	// sloFreshTarget is the default checkpoint-age target when
	// -fleet-stall-after is unset; warn at half the budget, page at it.
	sloFreshTarget = 30 * time.Second
)

// fleetLog is one stood-up log with its fault profile.
type fleetLog struct {
	name     string
	profile  string
	size     int
	poisoned []int
	injector *faultinject.Transport
	srv      *serve.Server
	done     chan error
}

// parseFleetSpecs turns "alpha:hang,bravo:flaky,charlie" into
// (name, profile) pairs; a missing profile means clean.
func parseFleetSpecs(s string) ([][2]string, error) {
	var out [][2]string
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, profile := part, "clean"
		if i := strings.IndexByte(part, ':'); i >= 0 {
			name, profile = part[:i], part[i+1:]
		}
		if name == "" {
			return nil, fmt.Errorf("empty log name in -logs spec %q", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate log name %q in -logs", name)
		}
		seen[name] = true
		switch profile {
		case "clean", "flaky", "hang", "poison":
		default:
			return nil, fmt.Errorf("unknown fault profile %q for log %q (want clean, flaky, hang, or poison)", profile, name)
		}
		out = append(out, [2]string{name, profile})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-logs given but no log specs parsed")
	}
	return out, nil
}

// fleetWindow is log i's half-stride-overlapping slice of [0, total).
func fleetWindow(i, n, total int) (lo, hi int) {
	if n <= 1 || total <= n {
		return 0, total
	}
	stride := total / n
	lo = i*stride - stride/2
	if lo < 0 {
		lo = 0
	}
	hi = (i+1)*stride + stride/2
	if i == n-1 || hi > total {
		hi = total
	}
	return lo, hi
}

// poisonIndices picks the deterministic per-log poisoned entries for
// the "poison" profile: quartile positions within the log.
func poisonIndices(size int) []int {
	if size < 4 {
		return []int{0}
	}
	set := map[int]bool{size / 4: true, size / 2: true, 3 * size / 4: true}
	out := make([]int, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// fleetTransport builds one log's fault injector (nil for clean).
func fleetTransport(profile string, seed int64, timeout time.Duration, poisoned []int) *faultinject.Transport {
	switch profile {
	case "flaky":
		return faultinject.New(faultinject.Config{
			Seed: seed, Rate: 0.25,
			Kinds:          []faultinject.Kind{faultinject.ServerError},
			MaxConsecutive: 2,
		}, nil)
	case "hang":
		// The hang outlasts the client timeout, so every hang costs the
		// crawl one full timeout before the retry path takes over.
		return faultinject.New(faultinject.Config{
			Seed: seed, Rate: 0.2,
			Kinds:          []faultinject.Kind{faultinject.Hang},
			HangFor:        2 * timeout,
			MaxConsecutive: 2,
		}, nil)
	case "poison":
		pe := map[int]bool{}
		for _, i := range poisoned {
			pe[i] = true
		}
		return faultinject.New(faultinject.Config{Seed: seed, PoisonEntries: pe}, nil)
	default:
		return nil
	}
}

// runFleet executes fleet mode end to end and returns the process exit
// code.
func runFleet(ctx context.Context, out io.Writer, reg *obs.Registry, tracer *obs.Tracer, p fleetParams) int {
	specs, err := parseFleetSpecs(p.specs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctmonitor: %v\n", err)
		return 1
	}
	if p.progressEvery > 0 {
		prog := obs.NewProgress(os.Stderr, reg, p.progressEvery, "fleet_", "monitor_", "ctlog_")
		prog.Start()
		defer prog.Stop()
	}

	// The corpus is seeded identically to single-log mode, so a
	// restarted process rebuilds byte-identical logs and checkpointed
	// crawls resume against unchanged trees.
	c, err := corpus.Generate(corpus.Config{Size: p.entries, Seed: 31})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctmonitor: %v\n", err)
		return 1
	}
	forged := buildForgery(p.query)

	retries := p.maxRetries
	if retries == 0 {
		retries = -1
	}

	var logs []*fleetLog
	var fleetSpecs []fleet.LogSpec
	for i, sp := range specs {
		name, profile := sp[0], sp[1]
		lo, hi := fleetWindow(i, len(specs), len(c.Entries))
		log, err := ctlog.NewLog(2025 + int64(i))
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctmonitor: %v\n", err)
			return 1
		}
		for _, e := range c.Entries[lo:hi] {
			if _, err := log.AddParsed(e.DER, false); err != nil {
				fmt.Fprintf(os.Stderr, "ctmonitor: %s: %v\n", name, err)
				return 1
			}
		}
		// Every log carries the forgery: the fleet must index it exactly
		// once and dedup the other copies.
		if _, err := log.AddParsed(forged, false); err != nil {
			fmt.Fprintf(os.Stderr, "ctmonitor: %s: %v\n", name, err)
			return 1
		}
		fl := &fleetLog{name: name, profile: profile, size: hi - lo + 1, done: make(chan error, 1)}
		if profile == "poison" {
			fl.poisoned = poisonIndices(fl.size)
		}
		fl.injector = fleetTransport(profile, p.faultSeed+int64(i), p.timeout, fl.poisoned)

		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctmonitor: %s listener: %v\n", name, err)
			return 1
		}
		// Per-log front ends share the registry's ctlog_server_*
		// COUNTERS — counters aggregate cleanly across servers, and the
		// fleet-wide totals are exactly what the shed-rate SLO burns
		// against; the fleet's labeled instruments carry the per-log
		// story. The rate limit applies per log — every front end gets
		// its own token bucket.
		fl.srv = serve.New((&ctlog.Server{
			Log:       log,
			RateLimit: p.rateLimit, RateBurst: p.rateBurst,
			Obs:     reg,
			Journal: p.journal,
			Name:    "ctlog-" + name,
		}).Handler(), serve.Config{
			Name:         "ctlog-" + name,
			DrainTimeout: p.drain,
			Journal:      p.journal,
		})
		go func(fl *fleetLog, ln net.Listener) { fl.done <- fl.srv.Run(ctx, ln) }(fl, ln)

		var transport http.RoundTripper
		if fl.injector != nil {
			transport = fl.injector
		}
		// Client metrics (ctlog_client_*, ctlog_breaker_*) are unlabeled
		// and therefore aggregate across the fleet's clients — the
		// fleet_* series carry the per-log story.
		client := &ctlog.Client{
			Base:       "http://" + ln.Addr().String(),
			HTTP:       &http.Client{Transport: transport},
			MaxRetries: retries,
			Timeout:    p.timeout,
			Obs:        reg,
			Tracer:     tracer,
		}
		if p.breakerThreshold > 0 {
			client.Breaker = &ctlog.Breaker{Threshold: p.breakerThreshold, Cooldown: p.breakerCooldown}
		}
		logs = append(logs, fl)
		fleetSpecs = append(fleetSpecs, fleet.LogSpec{Name: name, Client: client, Batch: p.batch})
		fmt.Fprintf(out, "fleet log %-10s profile=%-6s entries=%d (corpus [%d,%d) + forgery)", name, profile, fl.size, lo, hi)
		if len(fl.poisoned) > 0 {
			fmt.Fprintf(out, " poisoned=%v", fl.poisoned)
		}
		fmt.Fprintln(out)
	}

	// The consumer indexes each unique entry into every selected
	// monitor model, serially; per-entry panics are contained like the
	// single-log ingest path.
	var mons []*monitor.Monitor
	for _, caps := range monitor.Monitors() {
		if selected(caps.Name, p.monitorFilter) && !caps.Discontinued {
			mons = append(mons, monitor.New(caps))
		}
	}
	// The certificate index rides the same consume goroutine: each
	// unique entry is parsed once and fed to both the monitor models
	// and the LSM index, tagged with the log it was first seen on.
	var ix index.Index
	if p.indexDir != "" {
		lsm, err := index.Open(index.Options{Dir: p.indexDir, Obs: reg, Journal: p.journal})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctmonitor: index: %v\n", err)
			return 1
		}
		ix = lsm
	}
	nextID := 0
	parseErrors := 0
	indexPutErrors := 0
	handle := func(src string, e ctlog.Entry) {
		cert, err := x509cert.ParseWithMode(e.DER, x509cert.ParseLenient)
		if err != nil {
			parseErrors++
			return
		}
		nextID++
		for _, m := range mons {
			indexContained(m, nextID, cert)
		}
		if ix != nil {
			for _, rec := range index.FromCert(src, uint64(e.Index), ctlog.LeafHash(e.DER), cert) {
				if err := ix.Put(rec); err != nil {
					indexPutErrors++
				}
			}
		}
	}

	coord, err := fleet.New(fleet.Config{
		Logs:          fleetSpecs,
		CheckpointDir: p.checkpointDir,
		Audit:         p.audit,
		STHStoreDir:   p.sthStoreDir,
		Quorum:        p.quorum,
		QueueDepth:    p.queueDepth,
		StallAfter:    p.stallAfter,
		HandleSourced: handle,
		Obs:           reg,
		Tracer:        tracer,
		Journal:       p.journal,
		Flight:        p.flight,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctmonitor: %v\n", err)
		return 1
	}

	// The query API gets its own listener behind the shedding Limiter —
	// overload on the query side must never slow the crawl down.
	if ix != nil && p.queryAddr != "" {
		reg.Help("index_server_shed_total", "Query API requests shed by the limiter, by reason.")
		lim := &serve.Limiter{
			MaxInFlight: p.queryMaxInflight,
			Rate:        p.queryRateLimit,
			Burst:       p.queryBurst,
			OnShed: func(reason string) {
				reg.Counter("index_server_shed_total", "reason", reason).Inc()
			},
			Journal: p.journal,
			Name:    "query",
		}
		qsrv := serve.New(lim.Wrap(index.Handler(ix, reg, p.journal)), serve.Config{
			Name:         "query",
			DrainTimeout: p.drain,
			Journal:      p.journal,
		})
		qln, err := net.Listen("tcp", p.queryAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctmonitor: query listener: %v\n", err)
			return 1
		}
		fmt.Fprintf(out, "query API on http://%s/ct/v1/query\n", qln.Addr())
		qdone := make(chan error, 1)
		go func() { qdone <- qsrv.Run(ctx, qln) }()
		defer func() {
			if err := qsrv.Shutdown(context.Background()); err != nil {
				fmt.Fprintf(os.Stderr, "ctmonitor: query shutdown: %v\n", err)
			}
			<-qdone
		}()
	}

	// The SLO engine reads its signals straight off the registry: one
	// freshness rule per log (checkpoint age vs the stall budget), one
	// fleet-wide sync error-rate rule, one shed-rate rule. A page feeds
	// /readyz, so a sustained burn takes the fleet out of rotation even
	// while the quorum technically holds.
	slo := obs.NewSLOEngine(reg, p.journal)
	freshTarget := p.stallAfter
	if freshTarget <= 0 {
		freshTarget = sloFreshTarget
	}
	for _, sp := range fleetSpecs {
		name := sp.Name
		slo.AddFreshness("freshness:"+name, func() float64 {
			v, _ := reg.Sample("fleet_log_checkpoint_age_seconds", "log", name)
			return v
		}, freshTarget.Seconds(), 0.5, 1.0)
	}
	slo.AddBurnRate("sync-errors", func() float64 {
		v, _ := reg.Sample("ctlog_requests_total", "outcome", "retryable")
		return v
	}, func() float64 {
		v, _ := reg.Sum("ctlog_requests_total")
		return v
	}, sloErrObjective, sloFastWindow, sloSlowWindow, sloBurnWarn, sloBurnPage)
	if p.audit {
		// Any proof failure pages: target 1 failure, warn at half a
		// failure (unreachable for an integer — the first failure jumps
		// straight to page), so a log caught lying takes the fleet out
		// of rotation via /readyz even before the health loop pins it.
		slo.AddFreshness("proof-failures", func() float64 {
			return float64(coord.ProofFailures())
		}, 1.0, 0.5, 1.0)
	}
	slo.AddBurnRate("shed-rate", func() float64 {
		v, _ := reg.Sum("ctlog_server_shed_total")
		return v
	}, func() float64 {
		v, _ := reg.Sum("ctlog_server_requests_total")
		return v
	}, sloErrObjective, sloFastWindow, sloSlowWindow, sloBurnWarn, sloBurnPage)
	go slo.Run(ctx, sloTickEvery)

	if p.metricsAddr != "" {
		ready := func() error {
			if err := coord.Ready(); err != nil {
				return err
			}
			return slo.Err()
		}
		serveMetrics(ctx, p.metricsAddr, reg, p.journal, p.drain, ready, map[string]http.Handler{
			"/debug/fleet": coord.DebugHandler(slo, p.flight),
		})
	}

	res, err := coord.Run(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctmonitor: fleet: %v\n", err)
		return 1
	}
	// Run has drained the feed, so every unique entry has been Put; a
	// flush here seals them into a segment before the process exits —
	// this is the zero-loss half of the SIGTERM contract the soak
	// checks. Close is deferred before the query server finishes
	// draining, which is safe: Close seals the memtable and keeps the
	// segment set readable, so late queries still see every record.
	if ix != nil {
		if err := ix.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "ctmonitor: index flush: %v\n", err)
			return 1
		}
		defer func() {
			if err := ix.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "ctmonitor: index close: %v\n", err)
			}
		}()
	}
	// An interrupted or less-than-healthy finish is a flight moment:
	// capture what every subsystem was doing as the run wound down.
	if res.Interrupted || res.FinalState != fleet.Healthy.String() {
		_, _ = p.flight.Trigger("degraded-exit")
	}

	// Per-log outcome table.
	var rows [][]string
	for _, fl := range logs {
		rep := res.Logs[fl.name]
		note := rep.State
		if rep.Err != "" {
			note += ": " + rep.Err
		}
		rows = append(rows, []string{
			fl.name,
			fl.profile,
			fmt.Sprintf("%d", fl.size),
			fmt.Sprintf("%d", rep.Stats.Fetched),
			fmt.Sprintf("%d", rep.Stats.Audited),
			fmt.Sprintf("%d", rep.Stats.SkippedEntries),
			fmt.Sprintf("%d", rep.Stats.Retries),
			fmt.Sprintf("%d", rep.Restarts),
			fmt.Sprintf("%d", rep.Stats.ResumedFrom),
			note,
		})
	}
	fmt.Fprintln(out, report.Table(
		[]string{"Log", "Profile", "Size", "Fetched", "Audited", "Skipped", "Retries", "Restarts", "Resumed", "State"},
		rows))
	fmt.Fprintf(out, "\nfleet: %d unique, %d cross-log duplicates, state %s", res.UniqueEntries, res.DupEntries, res.FinalState)
	if res.Interrupted {
		fmt.Fprintf(out, " (interrupted, checkpointed)")
	}
	fmt.Fprintln(out)

	// Query verdicts, as in single-log mode: which monitors surface the
	// forgery for the victim domain?
	if !res.Interrupted {
		var qrows [][]string
		for _, m := range mons {
			qres := m.Query(p.query)
			verdict := fmt.Sprintf("%d certificate(s) found", len(qres.IDs))
			if qres.Refused {
				verdict = "query refused: " + qres.Reason
			} else if len(qres.IDs) == 0 {
				verdict = "forgery concealed"
			}
			qrows = append(qrows, []string{m.Caps.Name, verdict})
		}
		fmt.Fprintln(out, report.Table([]string{"Monitor", fmt.Sprintf("Query %q", p.query)}, qrows))
	}

	if p.statsJSON {
		sizes := map[string]int{}
		poisoned := map[string][]int{}
		injectors := map[string]any{}
		total := 0
		for _, fl := range logs {
			sizes[fl.name] = fl.size
			total += fl.size
			if len(fl.poisoned) > 0 {
				poisoned[fl.name] = fl.poisoned
			}
			if fl.injector != nil {
				st := fl.injector.Stats()
				injectors[fl.name] = map[string]int64{"requests": st.Requests, "faults": st.Total(), "poisoned": st.Poisoned}
			}
		}
		var ixStats *index.Stats
		if ix != nil {
			st := ix.Stats()
			ixStats = &st
		}
		obj := struct {
			Mode         string                      `json:"mode"`
			Audit        bool                        `json:"audit"`
			Entries      int                         `json:"entries"`
			Interrupted  bool                        `json:"interrupted"`
			FinalState   string                      `json:"final_state"`
			Unique       int                         `json:"unique_entries"`
			Deduped      int                         `json:"dup_entries"`
			ParseErrors  int                         `json:"parse_errors"`
			IndexPutErrs int                         `json:"index_put_errors"`
			Index        *index.Stats                `json:"index,omitempty"`
			LogSizes     map[string]int              `json:"log_sizes"`
			Poisoned     map[string][]int            `json:"poisoned"`
			Injectors    map[string]any              `json:"injectors"`
			Logs         map[string]*fleet.LogReport `json:"logs"`
			Metrics      map[string]any              `json:"metrics"`
		}{"fleet", p.audit, total, res.Interrupted, res.FinalState, res.UniqueEntries, res.DupEntries,
			parseErrors, indexPutErrors, ixStats, sizes, poisoned, injectors, res.Logs, reg.VarsSnapshot()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(obj); err != nil {
			fmt.Fprintf(os.Stderr, "ctmonitor: %v\n", err)
			return 1
		}
	}

	// Retire the per-log front ends.
	for _, fl := range logs {
		if err := fl.srv.Shutdown(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "ctmonitor: %s shutdown: %v\n", fl.name, err)
		}
		<-fl.done
	}

	// Degraded-not-dead: a stalled log exits 0 as long as the quorum
	// holds (or the run was interrupted and will be resumed).
	if !res.Interrupted {
		if err := coord.Ready(); err != nil {
			fmt.Fprintf(os.Stderr, "ctmonitor: fleet below quorum: %v\n", err)
			return 1
		}
	}
	return 0
}

// indexContained mirrors the single-log quarantine: a hostile
// certificate that panics one monitor's index step must not take down
// the fleet consumer.
func indexContained(m *monitor.Monitor, id int, cert *x509cert.Certificate) {
	defer func() { recover() }()
	m.Index(id, cert)
}
