// Command certgen generates the §3.2 test-Unicert mutation suites to a
// directory, one PEM file per certificate, for use against external
// parsers.
//
// Usage:
//
//	certgen -out testdata/ [-field Subject.CN] [-runes 0x00-0xFF] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/certgen"
	"repro/internal/uni"
	"repro/internal/x509cert"
)

func main() {
	out := flag.String("out", "unicert-testdata", "output directory")
	fieldName := flag.String("field", "", "restrict to one field (e.g. Subject.CN, SAN.DNSName); empty = all")
	latinOnly := flag.Bool("latin-only", false, "sample only U+0000–U+00FF instead of the full block set")
	seed := flag.Int64("seed", 7, "generator seed")
	limit := flag.Int("limit", 0, "cap the number of certificates (0 = no cap)")
	flag.Parse()

	gen, err := certgen.New(*seed)
	if err != nil {
		fatal("%v", err)
	}
	opts := certgen.SuiteOptions{}
	if *fieldName != "" {
		var found bool
		for _, f := range certgen.Fields() {
			if f.String() == *fieldName {
				opts.Fields = []certgen.Field{f}
				found = true
			}
		}
		if !found {
			fatal("unknown field %q (see certgen.Fields)", *fieldName)
		}
	}
	if *latinOnly {
		runes := make([]rune, 0, 256)
		for r := rune(0); r <= 0xFF; r++ {
			runes = append(runes, r)
		}
		opts.Runes = runes
	} else {
		opts.Runes = uni.SampleSet()
	}
	suite, err := gen.Suite(opts)
	if err != nil {
		fatal("%v", err)
	}
	if *limit > 0 && len(suite) > *limit {
		suite = suite[:*limit]
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal("%v", err)
	}
	for i, tc := range suite {
		name := fmt.Sprintf("%05d_%s_tag%d_U+%04X.pem", i, sanitize(tc.Field.String()), tc.Tag, tc.Injected)
		if err := os.WriteFile(filepath.Join(*out, name), x509cert.EncodePEM(tc.DER), 0o644); err != nil {
			fatal("%v", err)
		}
	}
	fmt.Printf("wrote %d test certificates to %s\n", len(suite), *out)
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == '.' || r == '/' {
			r = '_'
		}
		out = append(out, r)
	}
	return string(out)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "certgen: "+format+"\n", args...)
	os.Exit(1)
}
