// Command threatsim replays the RQ3 threat scenarios: CT monitor
// misleading (§6.1, Table 6), traffic obfuscation (§6.2), and browser
// user spoofing (Appendix F.1, Table 14).
//
// Usage:
//
//	threatsim [-scenario monitors|middlebox|browsers]
package main

import (
	"flag"
	"fmt"
	"math/big"
	"os"
	"time"

	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/middlebox"
	"repro/internal/report"
	"repro/internal/x509cert"
)

func main() {
	scenario := flag.String("scenario", "", "monitors, middlebox, or browsers; empty = all")
	flag.Parse()

	a := core.NewAnalyzer()
	run := func(name string) bool { return *scenario == "" || *scenario == name }

	if run("monitors") {
		forged := buildCert("victim.example\x00.attacker.site")
		results := a.MonitorExperiment(forged, "victim.example")
		fmt.Println(report.Table6(results))
		fmt.Println("Threat: a forged certificate whose indexed fields embed NUL evades the")
		fmt.Println("monitors marked concealed=yes when the owner queries their domain.")
		fmt.Println()
	}

	if run("middlebox") {
		fmt.Println("Traffic obfuscation (§6.2): blocklist rule CN=\"Evil Entity\"")
		rule := middlebox.Rule{Field: "CN", Value: "Evil Entity"}
		var rows [][]string
		for _, payload := range middlebox.ObfuscationPayloads("Evil Entity") {
			c := buildCert(payload)
			for _, res := range middlebox.Evasion(c, rule) {
				status := "caught"
				if res.Evaded {
					status = "EVADED"
				}
				rows = append(rows, []string{fmt.Sprintf("%q", payload), res.Engine.String(), status})
			}
		}
		fmt.Println(report.Table([]string{"Crafted CN", "Engine", "Outcome"}, rows))

		fmt.Println("Client SAN format checks (P2.2):")
		ulabel := buildCertSAN("b\xFCcher.example") // raw Latin-1 U-label
		var crows [][]string
		for _, cl := range middlebox.Clients() {
			err := middlebox.ValidateSANFormat(cl, ulabel)
			status := "accepts raw U-label (over-tolerant)"
			if err != nil {
				status = "rejects: " + err.Error()
			}
			crows = append(crows, []string{cl.String(), status})
		}
		fmt.Println(report.Table([]string{"Client", "Raw U-label SAN"}, crows))
	}

	if run("browsers") {
		fmt.Println("User spoofing (Appendix F.1):")
		findings := a.SpoofExperiment("www.‮lapyap‬.com", "www.paypal.com")
		var rows [][]string
		for _, f := range findings {
			rows = append(rows, []string{f.Engine.String(), fmt.Sprintf("%q", f.Rendered), fmt.Sprintf("%v", f.Deceptive)})
		}
		fmt.Println(report.Table([]string{"Engine", "Rendered", "Deceptive"}, rows))

		fmt.Println("Warning pages (G1.3):")
		c := buildCertSAN("www.‮lapyap‬.com")
		var wrows [][]string
		for _, e := range browser.Engines() {
			wrows = append(wrows, []string{e.String(), browser.WarningPage(e, c)})
		}
		fmt.Println(report.Table([]string{"Engine", "Warning page"}, wrows))
	}
}

var (
	caKey, _   = x509cert.GenerateKey(901)
	leafKey, _ = x509cert.GenerateKey(902)
	serial     = int64(100)
)

func buildCert(cn string) *x509cert.Certificate {
	return build(cn, cn)
}

func buildCertSAN(san string) *x509cert.Certificate {
	return build(san, san)
}

func build(cn, san string) *x509cert.Certificate {
	serial++
	tpl := &x509cert.Template{
		SerialNumber: big.NewInt(serial),
		Issuer:       x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, "Threat CA")),
		Subject:      x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, cn)),
		NotBefore:    time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:     time.Date(2025, 4, 1, 0, 0, 0, 0, time.UTC),
		SAN:          []x509cert.GeneralName{x509cert.DNSName(san)},
	}
	der, err := x509cert.Build(tpl, caKey, leafKey)
	if err != nil {
		fmt.Fprintf(os.Stderr, "threatsim: %v\n", err)
		os.Exit(1)
	}
	c, err := x509cert.Parse(der)
	if err != nil {
		fmt.Fprintf(os.Stderr, "threatsim: %v\n", err)
		os.Exit(1)
	}
	return c
}
