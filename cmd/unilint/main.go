// Command unilint is the released Unicert linter of §7: it lints PEM
// or DER certificates against the 95 Unicode/IDN constraint rules and
// prints per-lint findings.
//
// Usage:
//
//	unilint [-all-dates] [-quiet] [-workers N] cert.pem [cert2.pem ...]
//	unilint -list
//	unilint -demo
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/asn1der"
	"repro/internal/core"
	"repro/internal/lint"
	"repro/internal/pipeline"
	"repro/internal/x509cert"
)

func main() {
	listLints := flag.Bool("list", false, "list the registered lints and exit")
	allDates := flag.Bool("all-dates", false, "ignore lint effective dates (apply every rule retroactively)")
	quiet := flag.Bool("quiet", false, "print only failing lints")
	demo := flag.Bool("demo", false, "lint a built-in noncompliant demo certificate")
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	workers := flag.Int("workers", 0, "lint workers for multi-certificate inputs (0 = NumCPU)")
	flag.Parse()

	a := core.NewAnalyzer()
	if *listLints {
		for _, l := range a.Registry.All() {
			marker := " "
			if l.New {
				marker = "N"
			}
			fmt.Printf("%-60s %s %-8s %-18s %s\n", l.Name, marker, l.Severity, l.Taxonomy, l.Source)
		}
		return
	}
	opts := lint.Options{IgnoreEffectiveDates: *allDates}

	var inputs [][]byte
	if *demo {
		inputs = append(inputs, demoCert())
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal("read %s: %v", path, err)
		}
		if ders, err := x509cert.DecodePEM(data); err == nil {
			inputs = append(inputs, ders...)
		} else {
			inputs = append(inputs, data)
		}
	}
	if len(inputs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: unilint [-all-dates] [-quiet] cert.pem …  (or -demo, -list)")
		os.Exit(2)
	}

	exit := 0
	type jsonFinding struct {
		Certificate int    `json:"certificate"`
		Subject     string `json:"subject"`
		Lint        string `json:"lint"`
		Severity    string `json:"severity"`
		Taxonomy    string `json:"taxonomy"`
		Details     string `json:"details"`
	}
	var jsonFindings []jsonFinding
	results, err := pipeline.LintDERs(context.Background(), inputs, a.Registry, opts, pipeline.Config{Workers: *workers})
	if err != nil {
		fatal("%v", err)
	}
	for i, der := range inputs {
		res := results[i]
		cert, _ := x509cert.ParseWithMode(der, x509cert.ParseLenient)
		if *jsonOut {
			for _, f := range res.Failed() {
				exit = 1
				jsonFindings = append(jsonFindings, jsonFinding{
					Certificate: i,
					Subject:     cert.Subject.String(),
					Lint:        f.Lint.Name,
					Severity:    f.Lint.Severity.String(),
					Taxonomy:    f.Lint.Taxonomy.String(),
					Details:     f.Details,
				})
			}
			continue
		}
		fmt.Printf("== certificate %d: subject=%s serial=%v\n", i, cert.Subject, cert.SerialNumber)
		for _, f := range res.Findings {
			switch f.Status {
			case lint.Fail:
				fmt.Printf("   FAIL  %-8s %-55s %s\n", f.Lint.Severity, f.Lint.Name, f.Details)
				exit = 1
			case lint.Pass:
				if !*quiet {
					fmt.Printf("   pass  %-8s %s\n", f.Lint.Severity, f.Lint.Name)
				}
			}
		}
		if !res.Noncompliant() {
			fmt.Println("   compliant")
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonFindings); err != nil {
			fatal("%v", err)
		}
	}
	os.Exit(exit)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "unilint: "+format+"\n", args...)
	os.Exit(1)
}

// demoCert builds a certificate exhibiting several of the paper's
// noncompliance types at once.
func demoCert() []byte {
	caKey, err := x509cert.GenerateKey(1001)
	if err != nil {
		fatal("%v", err)
	}
	leafKey, err := x509cert.GenerateKey(1002)
	if err != nil {
		fatal("%v", err)
	}
	tpl := &x509cert.Template{
		SerialNumber: x509cert.NewSerial(7),
		Issuer:       x509cert.SimpleDN(x509cert.TextATV(x509cert.OIDCommonName, "Demo CA")),
		Subject: x509cert.SimpleDN(
			x509cert.TextATV(x509cert.OIDCommonName, "demo.example"),
			x509cert.TextATV(x509cert.OIDOrganizationName, "Evil\x00 Entity"),
			x509cert.PrintableATV(x509cert.OIDCountryName, "Germany"),
		),
		NotBefore: mustTime("2025-01-01"),
		NotAfter:  mustTime("2027-06-01"),
		SAN:       []x509cert.GeneralName{x509cert.DNSName("xn--www-hn0a.demo.example")},
		Policies: []x509cert.PolicyInformation{{
			Policy:       asn1der.OID{2, 23, 140, 1, 2, 2},
			ExplicitText: []x509cert.DisplayText{{Tag: asn1der.TagVisibleString, Bytes: []byte("demo notice")}},
		}},
	}
	der, err := x509cert.Build(tpl, caKey, leafKey)
	if err != nil {
		fatal("%v", err)
	}
	return der
}

func mustTime(s string) time.Time {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		fatal("%v", err)
	}
	return t
}
