// Command ctscan runs the RQ1 measurement over the synthetic CT corpus
// and regenerates the paper's issuance-side tables and figures:
// Tables 1, 2, 3, and 11, and Figures 2, 3, and 4.
//
// Usage:
//
//	ctscan -size 34800 [-workers N] [-table 1|2|3|11] [-figure 2|3|4] [-all-dates]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/lint"
	"repro/internal/report"
)

func main() {
	size := flag.Int("size", 34800, "corpus size (34800 ≈ 1:1000 of the paper's dataset)")
	seed := flag.Int64("seed", 2025, "corpus seed")
	workers := flag.Int("workers", 0, "pipeline workers (0 = NumCPU); output is identical for any value")
	table := flag.Int("table", 0, "print one table (1, 2, 3, or 11); 0 = all")
	figure := flag.Int("figure", 0, "print one figure (2, 3, or 4); 0 = all")
	allDates := flag.Bool("all-dates", false, "ignore lint effective dates")
	flag.Parse()

	a := core.NewAnalyzer()
	cfg := corpus.DefaultConfig()
	cfg.Size = *size
	cfg.Seed = *seed
	m, err := a.MeasureCorpusParallel(context.Background(), cfg, lint.Options{IgnoreEffectiveDates: *allDates}, *workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctscan: %v\n", err)
		os.Exit(1)
	}

	all := *table == 0 && *figure == 0
	total := len(m.Corpus.Entries)
	nc := m.NCCount()
	fmt.Printf("corpus: %d Unicerts (%d precertificates filtered), %d noncompliant (%s)\n\n",
		total, len(m.Corpus.Precerts), nc, report.Percent(nc, total))

	if all || *table == 1 {
		fmt.Println(report.Table1(m.Table1(a.Registry), nc))
	}
	if all || *table == 2 {
		fmt.Println(report.Table2(m.Table2(10)))
	}
	if all || *table == 3 {
		fmt.Println(report.Table3(m.Table3()))
	}
	if all || *table == 11 {
		fmt.Println(report.Table11(m.Table11(25)))
	}
	if all || *figure == 2 {
		fmt.Println(report.Figure2(m.Figure2()))
	}
	if all || *figure == 3 {
		series := map[string][]int{
			"IDNCert":      m.ValidityCDF(func(i int, e *corpus.Entry) bool { return e.Class == corpus.ClassIDNCert }),
			"OtherUnicert": m.ValidityCDF(func(i int, e *corpus.Entry) bool { return e.Class == corpus.ClassOtherUnicert }),
			"Noncompliant": m.ValidityCDF(func(i int, e *corpus.Entry) bool { return m.Noncompliant(i) }),
		}
		fmt.Println(report.Figure3(series))
	}
	if all || *figure == 4 {
		fmt.Println(report.Figure4(m.Figure4(50)))
	}
}
