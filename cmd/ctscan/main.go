// Command ctscan runs the RQ1 measurement over the synthetic CT corpus
// and regenerates the paper's issuance-side tables and figures:
// Tables 1, 2, 3, and 11, and Figures 2, 3, and 4.
//
// While the measurement runs, -metrics-addr serves the pipeline's
// live instruments (pipeline_* throughput and latency, per-lint
// lint_hits_total — the Table 1 cells accumulating in real time) as
// /metrics, /debug/vars, and /debug/pprof; -progress emits a
// structured progress line to stderr every interval.
//
// Usage:
//
//	ctscan -size 34800 [-workers N] [-table 1|2|3|11] [-figure 2|3|4] [-all-dates]
//	       [-metrics-addr :9090] [-progress 10s]
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/lint"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/report"
	"repro/internal/serve"
)

func main() {
	size := flag.Int("size", 34800, "corpus size (34800 ≈ 1:1000 of the paper's dataset)")
	seed := flag.Int64("seed", 2025, "corpus seed")
	workers := flag.Int("workers", 0, "pipeline workers (0 = NumCPU); output is identical for any value")
	table := flag.Int("table", 0, "print one table (1, 2, 3, or 11); 0 = all")
	figure := flag.Int("figure", 0, "print one figure (2, 3, or 4); 0 = all")
	allDates := flag.Bool("all-dates", false, "ignore lint effective dates")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof on this address (e.g. :9090)")
	progressEvery := flag.Duration("progress", 0, "emit a progress line to stderr every interval (0 disables)")
	flag.Parse()

	// SIGINT/SIGTERM cancel the measurement and drain the metrics
	// listener instead of killing the process mid-write.
	ctx, stop := serve.SignalContext(context.Background())
	defer stop()

	a := core.NewAnalyzer()
	reg := obs.NewRegistry()
	a.Registry.EnableMetrics(reg)
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctscan: metrics listener: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ctscan: metrics at http://%s/metrics\n", ln.Addr())
		msrv := serve.New(reg.Handler(), serve.Config{Name: "metrics", Obs: reg})
		go func() {
			if err := msrv.Run(ctx, ln); err != nil {
				fmt.Fprintf(os.Stderr, "ctscan: metrics server: %v\n", err)
			}
		}()
	}
	if *progressEvery > 0 {
		prog := obs.NewProgress(os.Stderr, reg, *progressEvery, "pipeline_")
		prog.Start()
		defer prog.Stop()
	}

	cfg := corpus.DefaultConfig()
	cfg.Size = *size
	cfg.Seed = *seed
	res, err := a.MeasureCorpusPipeline(ctx, cfg,
		lint.Options{IgnoreEffectiveDates: *allDates},
		pipeline.Config{Workers: *workers, Obs: reg})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ctscan: %v\n", err)
		os.Exit(1)
	}
	m := res.Measurement

	all := *table == 0 && *figure == 0
	total := len(m.Corpus.Entries)
	nc := m.NCCount()
	fmt.Printf("corpus: %d Unicerts (%d precertificates filtered), %d noncompliant (%s)\n\n",
		total, len(m.Corpus.Precerts), nc, report.Percent(nc, total))

	if all || *table == 1 {
		fmt.Println(report.Table1(m.Table1(a.Registry), nc))
	}
	if all || *table == 2 {
		fmt.Println(report.Table2(m.Table2(10)))
	}
	if all || *table == 3 {
		fmt.Println(report.Table3(m.Table3()))
	}
	if all || *table == 11 {
		fmt.Println(report.Table11(m.Table11(25)))
	}
	if all || *figure == 2 {
		fmt.Println(report.Figure2(m.Figure2()))
	}
	if all || *figure == 3 {
		series := map[string][]int{
			"IDNCert":      m.ValidityCDF(func(i int, e *corpus.Entry) bool { return e.Class == corpus.ClassIDNCert }),
			"OtherUnicert": m.ValidityCDF(func(i int, e *corpus.Entry) bool { return e.Class == corpus.ClassOtherUnicert }),
			"Noncompliant": m.ValidityCDF(func(i int, e *corpus.Entry) bool { return m.Noncompliant(i) }),
		}
		fmt.Println(report.Figure3(series))
	}
	if all || *figure == 4 {
		fmt.Println(report.Figure4(m.Figure4(50)))
	}
}
