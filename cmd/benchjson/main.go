// Command benchjson converts `go test -bench` output into a JSON
// benchmark record. It tees its stdin to stdout unchanged (so the
// benchmark tables remain visible in the terminal and CI logs),
// aggregates repeated runs of the same benchmark — `make bench` feeds
// it three interleaved rounds — into median plus min/max spread,
// derives per-certificate allocation costs for every benchmark that
// reports certs/s, and writes the result to the file named by -o.
//
// When a previous BENCH_*.json exists (auto-detected, or named via
// -prev) it also prints a delta table comparing median ns/op and the
// derived per-cert allocations against that baseline.
//
// Usage:
//
//	for r in 1 2 3; do go test -run '^$' -bench . -benchmem ./...; done \
//	  | benchjson -o BENCH_5.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// sample is one raw parsed result line.
type sample struct {
	name          string
	iterations    int64
	nsPerOp       float64
	bPerOp        float64
	allocsPerOp   float64
	certsPerSec   float64
	entriesPerSec float64
}

// Benchmark aggregates every round of one benchmark. The headline
// numbers are medians across rounds; NsPerOpMin/Max record the spread
// so a noisy host is visible in the record itself.
type Benchmark struct {
	Name        string  `json:"name"`
	Rounds      int     `json:"rounds"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerOpMin  float64 `json:"ns_per_op_min,omitempty"`
	NsPerOpMax  float64 `json:"ns_per_op_max,omitempty"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	CertsPerSec float64 `json:"certs_per_sec,omitempty"`
	// EntriesPerSec is the fleet-crawl throughput: unique CT entries
	// delivered downstream per second, summed across all logs.
	EntriesPerSec float64 `json:"entries_per_sec,omitempty"`
	// AllocsPerCert and BytesPerCert are derived for benchmarks that
	// report certs/s: per-op cost divided by certs per op
	// (certs_per_sec × ns_per_op / 1e9). These are the numbers the
	// allocation-budget guard (scripts/allocguard.sh) enforces.
	AllocsPerCert float64 `json:"allocs_per_cert,omitempty"`
	BytesPerCert  float64 `json:"bytes_per_cert,omitempty"`
}

// Histogram is one parsed "obshist" snapshot line, emitted by the E2E
// benchmarks from their obs registry (per-slot latency distributions).
// With multiple rounds the last snapshot per (bench, metric) wins —
// the registry accumulates, so the last line covers all rounds.
type Histogram struct {
	Bench  string  `json:"bench"`
	Metric string  `json:"metric"`
	Count  int64   `json:"count"`
	Sum    float64 `json:"sum"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
}

// Report is the file schema.
type Report struct {
	Generated      string      `json:"generated"`
	GoOS           string      `json:"goos"`
	GoArch         string      `json:"goarch"`
	NumCPU         int         `json:"num_cpu"`
	Note           string      `json:"note,omitempty"`
	Baseline       string      `json:"baseline,omitempty"`
	E2ESpeedup8W   float64     `json:"e2e_speedup_8_workers,omitempty"`
	E2ESpeedupNCPU float64     `json:"e2e_speedup_numcpu,omitempty"`
	Benchmarks     []Benchmark `json:"benchmarks"`
	Histograms     []Histogram `json:"histograms,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH.json", "output JSON file")
	note := flag.String("note", "", "free-form note recorded in the report")
	prev := flag.String("prev", "", "previous BENCH_*.json to diff against (default: auto-detect)")
	flag.Parse()

	var samples []sample
	var hists []Histogram
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if s, ok := parseBenchLine(line); ok {
			samples = append(samples, s)
		}
		if h, ok := parseObsHistLine(line); ok {
			hists = append(hists, h)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}

	benches := aggregate(samples)
	rep := Report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Note:       *note,
		Benchmarks: benches,
		Histograms: dedupeHists(hists),
	}
	if base := nsFor(benches, "BenchmarkMeasureCorpusE2E1"); base > 0 {
		if w8 := nsFor(benches, "BenchmarkMeasureCorpusE2E8"); w8 > 0 {
			rep.E2ESpeedup8W = round2(base / w8)
		}
		if ncpu := nsFor(benches, "BenchmarkMeasureCorpusE2ENumCPU"); ncpu > 0 {
			rep.E2ESpeedupNCPU = round2(base / ncpu)
		}
	}

	prevPath := *prev
	if prevPath == "" {
		prevPath = findPrevReport(*out)
	}
	if prevPath != "" {
		if old, err := loadReport(prevPath); err == nil {
			rep.Baseline = prevPath
			printDeltaTable(os.Stdout, prevPath, old, benches)
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: skipping delta vs %s: %v\n", prevPath, err)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks (%d raw rounds) to %s\n",
		len(benches), len(samples), *out)
}

// aggregate groups samples by benchmark name (first-seen order) and
// reduces each group to medians plus ns/op spread, then derives the
// per-certificate costs.
func aggregate(samples []sample) []Benchmark {
	order := []string{}
	byName := map[string][]sample{}
	for _, s := range samples {
		if _, seen := byName[s.name]; !seen {
			order = append(order, s.name)
		}
		byName[s.name] = append(byName[s.name], s)
	}
	out := make([]Benchmark, 0, len(order))
	for _, name := range order {
		group := byName[name]
		b := Benchmark{Name: name, Rounds: len(group)}
		var ns, bytes, allocs, certs, entries []float64
		for _, s := range group {
			if s.iterations > b.Iterations {
				b.Iterations = s.iterations
			}
			ns = append(ns, s.nsPerOp)
			bytes = append(bytes, s.bPerOp)
			allocs = append(allocs, s.allocsPerOp)
			certs = append(certs, s.certsPerSec)
			entries = append(entries, s.entriesPerSec)
		}
		b.NsPerOp = median(ns)
		if len(ns) > 1 {
			sort.Float64s(ns)
			b.NsPerOpMin, b.NsPerOpMax = ns[0], ns[len(ns)-1]
		}
		b.BPerOp = median(bytes)
		b.AllocsPerOp = median(allocs)
		b.CertsPerSec = median(certs)
		b.EntriesPerSec = median(entries)
		derivePerCert(&b)
		out = append(out, b)
	}
	return out
}

// derivePerCert fills AllocsPerCert/BytesPerCert from the median
// per-op numbers for benchmarks that report a certs/s rate.
func derivePerCert(b *Benchmark) {
	if b.CertsPerSec <= 0 || b.NsPerOp <= 0 {
		return
	}
	certsPerOp := b.CertsPerSec * b.NsPerOp / 1e9
	if certsPerOp <= 0 {
		return
	}
	if b.AllocsPerOp > 0 {
		b.AllocsPerCert = round2(b.AllocsPerOp / certsPerOp)
	}
	if b.BPerOp > 0 {
		b.BytesPerCert = round2(b.BPerOp / certsPerOp)
	}
}

func median(vals []float64) float64 {
	nz := vals[:0:0]
	for _, v := range vals {
		if v != 0 {
			nz = append(nz, v)
		}
	}
	if len(nz) == 0 {
		return 0
	}
	sort.Float64s(nz)
	n := len(nz)
	if n%2 == 1 {
		return nz[n/2]
	}
	return (nz[n/2-1] + nz[n/2]) / 2
}

func dedupeHists(hists []Histogram) []Histogram {
	type hkey struct{ bench, metric string }
	idx := map[hkey]int{}
	var out []Histogram
	for _, h := range hists {
		k := hkey{h.Bench, h.Metric}
		if i, ok := idx[k]; ok {
			out[i] = h
			continue
		}
		idx[k] = len(out)
		out = append(out, h)
	}
	return out
}

// findPrevReport picks the lexically-last BENCH_*.json in the current
// directory that is not the output target — with the BENCH_<n> naming
// convention that is the most recent committed record.
func findPrevReport(out string) string {
	matches, _ := filepath.Glob("BENCH_*.json")
	sort.Strings(matches)
	for i := len(matches) - 1; i >= 0; i-- {
		if filepath.Clean(matches[i]) != filepath.Clean(out) {
			return matches[i]
		}
	}
	return ""
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	// Older records predate the derived fields; fill them so the delta
	// table compares like with like.
	for i := range r.Benchmarks {
		if r.Benchmarks[i].AllocsPerCert == 0 {
			derivePerCert(&r.Benchmarks[i])
		}
	}
	return &r, nil
}

// printDeltaTable renders the comparison against the previous record:
// median ns/op plus, where available, the derived per-cert allocation
// numbers the PR-over-PR perf work is tracked by.
func printDeltaTable(w *os.File, prevPath string, old *Report, cur []Benchmark) {
	oldBy := map[string]Benchmark{}
	for _, b := range old.Benchmarks {
		oldBy[b.Name] = b
	}
	fmt.Fprintf(w, "\nbenchjson: delta vs %s (generated %s)\n", prevPath, old.Generated)
	fmt.Fprintf(w, "%-40s %15s %15s %8s %12s %12s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "Δ", "old alloc/c", "new alloc/c", "Δ")
	for _, b := range cur {
		o, ok := oldBy[b.Name]
		if !ok {
			fmt.Fprintf(w, "%-40s %15s %15.0f %8s\n", b.Name, "(new)", b.NsPerOp, "")
			continue
		}
		nsDelta := pct(o.NsPerOp, b.NsPerOp)
		allocOld, allocNew, allocDelta := "", "", ""
		if o.AllocsPerCert > 0 && b.AllocsPerCert > 0 {
			allocOld = fmt.Sprintf("%.1f", o.AllocsPerCert)
			allocNew = fmt.Sprintf("%.1f", b.AllocsPerCert)
			allocDelta = pct(o.AllocsPerCert, b.AllocsPerCert)
		}
		fmt.Fprintf(w, "%-40s %15.0f %15.0f %8s %12s %12s %8s\n",
			b.Name, o.NsPerOp, b.NsPerOp, nsDelta, allocOld, allocNew, allocDelta)
	}
	fmt.Fprintln(w)
}

func pct(old, cur float64) string {
	if old <= 0 {
		return ""
	}
	return fmt.Sprintf("%+.1f%%", (cur-old)/old*100)
}

// parseBenchLine parses a benchmark result line of the form
//
//	BenchmarkName-8   	     123	   9876 ns/op	  12 B/op	  3 allocs/op	  4567 certs/s
//
// The -N GOMAXPROCS suffix is stripped from the name.
func parseBenchLine(line string) (sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return sample{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return sample{}, false
	}
	s := sample{name: name, iterations: iters}
	// Remaining fields come in value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return sample{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			s.nsPerOp = v
		case "B/op":
			s.bPerOp = v
		case "allocs/op":
			s.allocsPerOp = v
		case "certs/s":
			s.certsPerSec = v
		case "entries/s":
			s.entriesPerSec = v
		}
	}
	if s.nsPerOp == 0 {
		return sample{}, false
	}
	return s, true
}

// parseObsHistLine parses a histogram snapshot line of the form
//
//	obshist BenchmarkMeasureCorpusE2E8 pipeline_slot_lint_seconds count=870 sum=1.23 p50=0.0004 p90=0.0016 p99=0.0065
func parseObsHistLine(line string) (Histogram, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || fields[0] != "obshist" {
		return Histogram{}, false
	}
	h := Histogram{Bench: fields[1], Metric: fields[2]}
	for _, f := range fields[3:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return Histogram{}, false
		}
		x, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return Histogram{}, false
		}
		switch k {
		case "count":
			h.Count = int64(x)
		case "sum":
			h.Sum = x
		case "p50":
			h.P50 = x
		case "p90":
			h.P90 = x
		case "p99":
			h.P99 = x
		}
	}
	if h.Count == 0 {
		return Histogram{}, false
	}
	return h, true
}

func nsFor(benches []Benchmark, name string) float64 {
	for _, b := range benches {
		if b.Name == name {
			return b.NsPerOp
		}
	}
	return 0
}

func round2(f float64) float64 { return float64(int64(f*100+0.5)) / 100 }
