// Command benchjson converts `go test -bench` output into a JSON
// benchmark record. It tees its stdin to stdout unchanged (so the
// benchmark tables remain visible in the terminal and CI logs) and
// writes the parsed results — ns/op, B/op, allocs/op, certs/s,
// entries/s — to the
// file named by -o, along with host facts and the end-to-end speedup of
// the 8-worker pipeline over the sequential baseline.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH_2.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	CertsPerSec float64 `json:"certs_per_sec,omitempty"`
	// EntriesPerSec is the fleet-crawl throughput: unique CT entries
	// delivered downstream per second, summed across all logs.
	EntriesPerSec float64 `json:"entries_per_sec,omitempty"`
}

// Histogram is one parsed "obshist" snapshot line, emitted by the E2E
// benchmarks from their obs registry (per-slot latency distributions).
type Histogram struct {
	Bench  string  `json:"bench"`
	Metric string  `json:"metric"`
	Count  int64   `json:"count"`
	Sum    float64 `json:"sum"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
}

// Report is the file schema.
type Report struct {
	Generated      string      `json:"generated"`
	GoOS           string      `json:"goos"`
	GoArch         string      `json:"goarch"`
	NumCPU         int         `json:"num_cpu"`
	Note           string      `json:"note,omitempty"`
	E2ESpeedup8W   float64     `json:"e2e_speedup_8_workers,omitempty"`
	E2ESpeedupNCPU float64     `json:"e2e_speedup_numcpu,omitempty"`
	Benchmarks     []Benchmark `json:"benchmarks"`
	Histograms     []Histogram `json:"histograms,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH.json", "output JSON file")
	note := flag.String("note", "", "free-form note recorded in the report")
	flag.Parse()

	var benches []Benchmark
	var hists []Histogram
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if b, ok := parseBenchLine(line); ok {
			benches = append(benches, b)
		}
		if h, ok := parseObsHistLine(line); ok {
			hists = append(hists, h)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}

	rep := Report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Note:       *note,
		Benchmarks: benches,
		Histograms: hists,
	}
	if base := nsFor(benches, "BenchmarkMeasureCorpusE2E1"); base > 0 {
		if w8 := nsFor(benches, "BenchmarkMeasureCorpusE2E8"); w8 > 0 {
			rep.E2ESpeedup8W = round2(base / w8)
		}
		if ncpu := nsFor(benches, "BenchmarkMeasureCorpusE2ENumCPU"); ncpu > 0 {
			rep.E2ESpeedupNCPU = round2(base / ncpu)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(benches), *out)
}

// parseBenchLine parses a benchmark result line of the form
//
//	BenchmarkName-8   	     123	   9876 ns/op	  12 B/op	  3 allocs/op	  4567 certs/s
//
// The -N GOMAXPROCS suffix is stripped from the name.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	// Remaining fields come in value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		case "certs/s":
			b.CertsPerSec = v
		case "entries/s":
			b.EntriesPerSec = v
		}
	}
	if b.NsPerOp == 0 {
		return Benchmark{}, false
	}
	return b, true
}

// parseObsHistLine parses a histogram snapshot line of the form
//
//	obshist BenchmarkMeasureCorpusE2E8 pipeline_slot_lint_seconds count=870 sum=1.23 p50=0.0004 p90=0.0016 p99=0.0065
func parseObsHistLine(line string) (Histogram, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || fields[0] != "obshist" {
		return Histogram{}, false
	}
	h := Histogram{Bench: fields[1], Metric: fields[2]}
	for _, f := range fields[3:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return Histogram{}, false
		}
		x, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return Histogram{}, false
		}
		switch k {
		case "count":
			h.Count = int64(x)
		case "sum":
			h.Sum = x
		case "p50":
			h.P50 = x
		case "p90":
			h.P90 = x
		case "p99":
			h.P99 = x
		}
	}
	if h.Count == 0 {
		return Histogram{}, false
	}
	return h, true
}

func nsFor(benches []Benchmark, name string) float64 {
	for _, b := range benches {
		if b.Name == name {
			return b.NsPerOp
		}
	}
	return 0
}

func round2(f float64) float64 { return float64(int64(f*100+0.5)) / 100 }
