// Command libtest runs the RQ2 differential tests over the nine TLS
// library models and prints Tables 4 and 5.
//
// Usage:
//
//	libtest [-table 4|5] [-seed 11]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	table := flag.Int("table", 0, "print one table (4 or 5); 0 = both")
	seed := flag.Int64("seed", 11, "harness seed")
	flag.Parse()

	a := core.NewAnalyzer()
	a.Seed = *seed
	t4, t5, err := a.LibraryAnalysis()
	if err != nil {
		fmt.Fprintf(os.Stderr, "libtest: %v\n", err)
		os.Exit(1)
	}
	if *table == 0 || *table == 4 {
		fmt.Println(report.Table4(t4))
	}
	if *table == 0 || *table == 5 {
		fmt.Println(report.Table5(t5))
	}
}
