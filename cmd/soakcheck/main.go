// Command soakcheck verifies the crash/recovery soak run driven by
// `make soak`: two ctmonitor -stats-json outputs, the first from a
// crawl killed mid-flight with SIGTERM, the second from a restarted
// process resuming off the same -checkpoint-file against an
// identically rebuilt log.
//
// It asserts the hardening acceptance criteria:
//
//   - the first run was interrupted and checkpointed;
//   - the second run resumed from a non-zero checkpoint (no refetch:
//     its fetch count is exactly the remainder);
//   - entry accounting is exact — for every monitor, run 1 fetches
//     plus run 2 fetches equal the log size, no loss and no overlap;
//   - the overloaded log shed requests (ctlog_server_shed_total > 0);
//   - the client's circuit breaker both opened and re-closed.
//
// With -fleet it instead checks a fleet-mode soak (ctmonitor -logs):
// per-log checkpoint resume with zero refetch, exact cross-log dedup
// accounting, poisoned-entry quarantine, and fleet health that
// degrades without dying. See fleet.go.
//
// With -journal1/-journal2 (fleet mode) it additionally replays each
// run's JSONL event journal and reconciles the summed
// monitor.sync.end accounting per log against that run's -stats-json
// rollup — fetched, deduped, quarantined, and skipped must match
// EXACTLY, proving the journal records every crawl outcome including
// interrupted ones.
//
// Usage:
//
//	soakcheck [-fleet] [-journal1 run1.jsonl -journal2 run2.jsonl] run1.json run2.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// syncStats mirrors the fields of monitor.SyncStats this checker
// needs; the JSON object carries the Go field names verbatim.
type syncStats struct {
	Fetched     int
	ResumedFrom int
}

type run struct {
	Entries     int                  `json:"entries"`
	Interrupted bool                 `json:"interrupted"`
	Monitors    map[string]syncStats `json:"monitors"`
	Metrics     map[string]any       `json:"metrics"`
}

func main() {
	fleetMode := flag.Bool("fleet", false, "check a fleet-mode soak (ctmonitor -logs stats-json schema)")
	journal1 := flag.String("journal1", "", "fleet mode: run 1's -journal JSONL file to replay against its stats")
	journal2 := flag.String("journal2", "", "fleet mode: run 2's -journal JSONL file to replay against its stats")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: soakcheck [-fleet] [-journal1 run1.jsonl -journal2 run2.jsonl] run1.json run2.json")
		os.Exit(2)
	}
	if *fleetMode {
		os.Exit(checkFleet(flag.Arg(0), flag.Arg(1), *journal1, *journal2))
	}
	run1, run2 := load(flag.Arg(0)), load(flag.Arg(1))

	var failures []string
	failf := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}

	if run1.Entries == 0 || run1.Entries != run2.Entries {
		failf("log sizes disagree: run1=%d run2=%d", run1.Entries, run2.Entries)
	}
	total := run2.Entries
	if !run1.Interrupted {
		failf("run 1 was not interrupted; the SIGTERM landed after the crawl finished — lengthen the crawl or shorten the kill delay")
	}
	if run2.Interrupted {
		failf("run 2 was interrupted; the resumed crawl must complete")
	}

	// The resumed run must pick up from a durable checkpoint, and its
	// fetch count must be exactly the remainder — a refetch would show
	// up as Fetched > total-ResumedFrom.
	resumed := 0
	for name, s2 := range run2.Monitors {
		if s2.ResumedFrom <= 0 {
			continue
		}
		resumed++
		if want := total - s2.ResumedFrom; s2.Fetched != want {
			failf("%s: resumed at %d but fetched %d (want exactly %d)", name, s2.ResumedFrom, s2.Fetched, want)
		}
	}
	if resumed == 0 {
		failf("no monitor resumed from a checkpoint (ResumedFrom == 0 everywhere)")
	}

	// Exact entry accounting across the kill: each monitor's two crawls
	// partition the log.
	names := make(map[string]bool)
	for n := range run1.Monitors {
		names[n] = true
	}
	for n := range run2.Monitors {
		names[n] = true
	}
	if len(names) == 0 {
		failf("no monitors in either run")
	}
	for n := range names {
		sum := run1.Monitors[n].Fetched + run2.Monitors[n].Fetched
		if sum != total {
			failf("%s: run1 fetched %d + run2 fetched %d = %d, want %d", n, run1.Monitors[n].Fetched, run2.Monitors[n].Fetched, sum, total)
		}
	}

	shed := metricSum("ctlog_server_shed_total", run1.Metrics, run2.Metrics)
	if shed <= 0 {
		failf("log never shed a request (ctlog_server_shed_total == 0); overload protection untested")
	}
	opened := metricSum(`ctlog_breaker_transitions_total{to="open"}`, run1.Metrics, run2.Metrics)
	closed := metricSum(`ctlog_breaker_transitions_total{to="closed"}`, run1.Metrics, run2.Metrics)
	if opened < 1 {
		failf("circuit breaker never opened")
	}
	if closed < 1 {
		failf("circuit breaker never re-closed after opening")
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "soakcheck: FAIL: %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("soakcheck: PASS: %d entries, %d monitor(s) resumed, %.0f shed, breaker opened %.0f× and closed %.0f×\n",
		total, resumed, shed, opened, closed)
}

// metricSum adds every metric sample whose key starts with prefix
// across the given snapshots. Counter values arrive as float64 via
// JSON.
func metricSum(prefix string, snapshots ...map[string]any) float64 {
	var sum float64
	for _, m := range snapshots {
		for k, v := range m {
			if !strings.HasPrefix(k, prefix) {
				continue
			}
			if f, ok := v.(float64); ok {
				sum += f
			}
		}
	}
	return sum
}

func load(path string) run {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soakcheck: %v\n", err)
		os.Exit(2)
	}
	var r run
	if err := json.Unmarshal(data, &r); err != nil {
		fmt.Fprintf(os.Stderr, "soakcheck: %s: %v\n", path, err)
		os.Exit(2)
	}
	return r
}
