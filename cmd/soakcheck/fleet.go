package main

// Fleet-mode soak verification: two `ctmonitor -logs ... -stats-json`
// outputs, the first SIGTERMed mid-crawl, the second a restarted
// process resuming every log off its own advisory-locked checkpoint
// against identically rebuilt logs.
//
// Asserted acceptance criteria:
//
//   - run 1 was interrupted and never reported the fleet stalled
//     (degraded-not-dead); run 2 completed with every log healthy;
//   - every log resumed exactly where run 1's checkpoint left it —
//     run 2's ResumedFrom equals run 1's fetched+skipped, and run 2
//     fetched exactly the remainder (zero refetch);
//   - entry accounting is exact per log across the kill:
//     fetched + skipped over both runs equals the log size;
//   - cross-log dedup is exact per run: unique + duplicates delivered
//     equals the sum of per-log fetches;
//   - the poisoned log skipped exactly its poisoned indices — across
//     both runs combined — and still ended healthy (bisection
//     quarantines entries, it does not stall the log);
//   - the shared client breaker opened and re-closed at least once.
//
// When both runs crawled with -audit, the calculus changes and extra
// criteria apply: every claimed entry was Merkle-verified (Audited ==
// Fetched − Skipped with zero skips), the clean logs finished with
// zero proof failures, and the poisoned log — whose hole the audited
// tree cannot be verified past — ended run 2 distrusted with exactly
// the entries before its first poisoned index verified, a
// monitor.proof_failure and a fleet.log_state → distrusted event in
// the journals, and the fleet degraded-but-ready.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/obs"
)

// fleetSyncStats mirrors the monitor.SyncStats fields the fleet
// checker needs; the nested "stats" object carries Go field names.
type fleetSyncStats struct {
	Fetched        int
	SkippedEntries int
	ResumedFrom    int
	Forwarded      int
	Deduped        int
	Quarantined    int
	Audited        int
	ProofFailures  int
}

type fleetLogReport struct {
	Stats    fleetSyncStats `json:"stats"`
	Restarts int            `json:"restarts"`
	State    string         `json:"state"`
	Err      string         `json:"err"`
}

// fleetIndexStats mirrors the index.Stats self-report embedded in the
// stats JSON when the run persisted a certificate index.
type fleetIndexStats struct {
	Backend  string   `json:"backend"`
	Certs    uint64   `json:"certs"`
	Postings uint64   `json:"postings"`
	Segments int      `json:"segments"`
	Damaged  []string `json:"damaged"`
}

type fleetRun struct {
	Mode         string                    `json:"mode"`
	Audit        bool                      `json:"audit"`
	Entries      int                       `json:"entries"`
	Interrupted  bool                      `json:"interrupted"`
	FinalState   string                    `json:"final_state"`
	Unique       int                       `json:"unique_entries"`
	Deduped      int                       `json:"dup_entries"`
	ParseErrors  int                       `json:"parse_errors"`
	IndexPutErrs int                       `json:"index_put_errors"`
	Index        *fleetIndexStats          `json:"index"`
	LogSizes     map[string]int            `json:"log_sizes"`
	Poisoned     map[string][]int          `json:"poisoned"`
	Logs         map[string]fleetLogReport `json:"logs"`
	Metrics      map[string]any            `json:"metrics"`
}

func checkFleet(path1, path2, journal1, journal2 string) int {
	run1, run2 := loadFleet(path1), loadFleet(path2)

	var failures []string
	failf := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}

	for _, r := range []struct {
		path string
		run  fleetRun
	}{{path1, run1}, {path2, run2}} {
		if r.run.Mode != "fleet" {
			failf("%s: mode %q, want \"fleet\" (was ctmonitor run with -logs?)", r.path, r.run.Mode)
		}
	}
	if run1.Audit != run2.Audit {
		failf("runs disagree on audit mode (%v vs %v); both must use the same -audit setting", run1.Audit, run2.Audit)
	}
	audit := run1.Audit && run2.Audit
	if len(run1.LogSizes) < 2 {
		failf("run 1 reports %d logs; a fleet soak needs at least 2", len(run1.LogSizes))
	}
	if !sameSizes(run1.LogSizes, run2.LogSizes) {
		failf("per-log sizes disagree between runs: %v vs %v (different -entries or -logs?)", run1.LogSizes, run2.LogSizes)
	}
	if !run1.Interrupted {
		failf("run 1 was not interrupted; the SIGTERM landed after the crawl finished — lengthen the crawl or shorten the kill delay")
	}
	if run2.Interrupted {
		failf("run 2 was interrupted; the resumed fleet crawl must complete")
	}

	// Degraded-not-dead across the kill: an interrupted fleet may be
	// degraded, but must never have collapsed below quorum; the
	// resumed fleet must finish with every failure domain healthy.
	if run1.FinalState == "stalled" {
		failf("run 1 ended with the fleet stalled; degraded-mode isolation failed")
	}
	// Under audit a poisoned log is distrusted (the tree cannot be
	// verified past a hole), so the resumed fleet correctly ends
	// degraded — never stalled — while the quorum holds. Without audit
	// the poisoned entries are skipped and every log ends healthy.
	if audit && len(run2.Poisoned) > 0 {
		if run2.FinalState != "degraded" {
			failf("run 2 ended with fleet state %q, want degraded (the poisoned log must be distrusted, its siblings healthy)", run2.FinalState)
		}
	} else if run2.FinalState != "healthy" {
		failf("run 2 ended with fleet state %q, want healthy", run2.FinalState)
	}

	// Per-log checkpoint resume and exact entry accounting. A log's
	// durable checkpoint is exactly the entries it handled (fetched or
	// bisection-skipped); the resumed crawl must start there and fetch
	// exactly the remainder.
	names := make([]string, 0, len(run1.LogSizes))
	for name := range run1.LogSizes {
		names = append(names, name)
	}
	sort.Strings(names)
	resumed := 0
	for _, name := range names {
		size := run1.LogSizes[name]
		l1, ok1 := run1.Logs[name]
		l2, ok2 := run2.Logs[name]
		if !ok1 || !ok2 {
			failf("%s: missing from a run's logs map (run1 %v, run2 %v)", name, ok1, ok2)
			continue
		}
		handled1 := l1.Stats.Fetched + l1.Stats.SkippedEntries
		if l2.Stats.ResumedFrom != handled1 {
			failf("%s: run 2 resumed at %d but run 1 handled %d (fetched %d + skipped %d); checkpoint lost progress",
				name, l2.Stats.ResumedFrom, handled1, l1.Stats.Fetched, l1.Stats.SkippedEntries)
		}
		if l2.Stats.ResumedFrom > 0 {
			resumed++
		}
		if audit {
			// The audit contract, per run: every claimed entry was
			// Merkle-verified and nothing was skipped — a persistently
			// unfetchable entry distrusts the log instead.
			for _, rl := range []struct {
				path string
				st   fleetSyncStats
			}{{path1, l1.Stats}, {path2, l2.Stats}} {
				if rl.st.Audited != rl.st.Fetched-rl.st.SkippedEntries {
					failf("%s: %s audited %d entries but fetched %d − skipped %d; unverified entries were claimed",
						rl.path, name, rl.st.Audited, rl.st.Fetched, rl.st.SkippedEntries)
				}
				if rl.st.SkippedEntries != 0 {
					failf("%s: %s skipped %d entries under audit; a hole must distrust the log, never be skipped",
						rl.path, name, rl.st.SkippedEntries)
				}
			}
		}
		if _, isPoisoned := run2.Poisoned[name]; audit && isPoisoned {
			// The audited crawl cannot verify the tree past the first
			// poisoned (unfetchable) entry: everything before it is
			// claimed and verified, the log lands distrusted there.
			p0 := run2.Poisoned[name][0]
			for _, i := range run2.Poisoned[name] {
				if i < p0 {
					p0 = i
				}
			}
			if l2.State != "distrusted" {
				failf("%s: run 2 ended %s (%s), want distrusted — audit cannot verify past the poisoned entry", name, l2.State, l2.Err)
			}
			if l1.Stats.ProofFailures+l2.Stats.ProofFailures == 0 {
				failf("%s: poisoned log recorded no proof-failure incident across either run", name)
			}
			if got := handled1 + l2.Stats.Fetched; got != p0 {
				failf("%s: runs verified %d entries, want exactly the %d before the first poisoned index %v",
					name, got, p0, run2.Poisoned[name])
			}
			continue
		}
		if audit && l1.Stats.ProofFailures+l2.Stats.ProofFailures != 0 {
			failf("%s: %d proof failures on a clean log", name, l1.Stats.ProofFailures+l2.Stats.ProofFailures)
		}
		if want := size - l2.Stats.ResumedFrom - l2.Stats.SkippedEntries; l2.Stats.Fetched != want {
			failf("%s: resumed at %d but fetched %d of %d (want exactly %d; skipped %d) — refetch or loss",
				name, l2.Stats.ResumedFrom, l2.Stats.Fetched, size, want, l2.Stats.SkippedEntries)
		}
		if sum := handled1 + l2.Stats.Fetched + l2.Stats.SkippedEntries; sum != size {
			failf("%s: runs handled %d entries total, want the log size %d", name, sum, size)
		}
		if l2.State != "healthy" {
			failf("%s: run 2 ended %s (%s), want healthy", name, l2.State, l2.Err)
		}
	}
	if resumed == 0 {
		failf("no log resumed from a checkpoint (ResumedFrom == 0 everywhere)")
	}

	// Cross-log dedup is exact per run: every fetched entry was
	// delivered downstream exactly once or counted as a duplicate.
	for _, r := range []struct {
		path string
		run  fleetRun
	}{{path1, run1}, {path2, run2}} {
		fetched := 0
		for _, l := range r.run.Logs {
			fetched += l.Stats.Fetched
		}
		if got := r.run.Unique + r.run.Deduped; got != fetched {
			failf("%s: unique %d + duplicates %d = %d, want the %d entries fetched — dedup lost or double-delivered",
				r.path, r.run.Unique, r.run.Deduped, got, fetched)
		}
	}

	// Poisoned-log quarantine: exactly the poisoned indices were
	// bisected out, across both runs combined, and nothing else.
	if len(run2.Poisoned) == 0 {
		failf("no poisoned log in the fleet; quarantine untested (add a :poison profile)")
	}
	// Audit mode never skips (the distrust assertions above cover the
	// poisoned log); without audit, bisection quarantines exactly the
	// poisoned indices.
	for name, idxs := range run2.Poisoned {
		if audit {
			break
		}
		skipped := run1.Logs[name].Stats.SkippedEntries + run2.Logs[name].Stats.SkippedEntries
		if skipped != len(idxs) {
			failf("%s: skipped %d entries across both runs, want exactly the %d poisoned %v",
				name, skipped, len(idxs), idxs)
		}
	}
	for _, name := range names {
		if _, poisoned := run2.Poisoned[name]; poisoned {
			continue
		}
		if skipped := run1.Logs[name].Stats.SkippedEntries + run2.Logs[name].Stats.SkippedEntries; skipped != 0 {
			failf("%s: skipped %d entries but is not a poisoned log", name, skipped)
		}
	}

	// Certificate-index zero-loss accounting across the SIGTERM. Both
	// runs share one index directory: run 1's graceful shutdown must
	// have sealed every Put into segments, so run 2's final durable
	// cert count is exactly run 1's count plus the certificates run 2
	// itself indexed (its index_puts_total counter). Any gap means the
	// restart lost indexed entries.
	if run1.Index == nil || run2.Index == nil {
		failf("missing index stats (was ctmonitor run with -index-dir?)")
	} else {
		puts1 := uint64(metricSum("index_puts_total", run1.Metrics))
		puts2 := uint64(metricSum("index_puts_total", run2.Metrics))
		if run1.Index.Certs != puts1 {
			failf("run 1 indexed %d certs but its store holds %d — flush lost entries before exit",
				puts1, run1.Index.Certs)
		}
		if want := run1.Index.Certs + puts2; run2.Index.Certs != want {
			failf("run 2's index holds %d certs, want %d (run 1's %d + run 2's %d puts) — indexed entries lost across the restart",
				run2.Index.Certs, want, run1.Index.Certs, puts2)
		}
		if puts2 == 0 {
			failf("run 2 indexed nothing; the resumed crawl never reached the index")
		}
		for _, r := range []struct {
			path string
			run  fleetRun
		}{{path1, run1}, {path2, run2}} {
			if r.run.IndexPutErrs != 0 {
				failf("%s: %d index put errors, want 0", r.path, r.run.IndexPutErrs)
			}
			if len(r.run.Index.Damaged) != 0 {
				failf("%s: index quarantined damaged segments %v", r.path, r.run.Index.Damaged)
			}
			// Every indexed certificate carries exactly 5 postings
			// (cert, domain, skeleton, issuer, time spaces).
			if r.run.Index.Postings != 5*r.run.Index.Certs {
				failf("%s: %d postings for %d certs, want exactly 5 per cert",
					r.path, r.run.Index.Postings, r.run.Index.Certs)
			}
		}
	}

	opened := metricSum(`ctlog_breaker_transitions_total{to="open"}`, run1.Metrics, run2.Metrics)
	closed := metricSum(`ctlog_breaker_transitions_total{to="closed"}`, run1.Metrics, run2.Metrics)
	if opened < 1 {
		failf("no per-log circuit breaker ever opened")
	}
	if closed < 1 {
		failf("no circuit breaker re-closed after opening")
	}

	// Journal replay: the summed monitor.sync.end accounting must
	// reproduce each run's stats rollup exactly — including run 1's
	// interrupted crawls, whose final sync.end carries the partial
	// counts the SIGTERM cut short.
	journals := 0
	evidence := &incidentEvidence{distrusted: map[string]bool{}, proofFailed: map[string]bool{}}
	for _, rj := range []struct {
		journal string
		path    string
		run     fleetRun
	}{{journal1, path1, run1}, {journal2, path2, run2}} {
		if rj.journal == "" {
			continue
		}
		reconcileJournal(rj.journal, rj.path, rj.run, evidence, failf)
		journals++
	}
	// The distrust incident trail: under audit the poisoned log's
	// proof failure and its distrusted state transition must both be
	// journaled (in whichever run first reached the hole).
	if audit && journals == 2 {
		for name := range run2.Poisoned {
			if !evidence.proofFailed[name] {
				failf("no monitor.proof_failure journal event for poisoned log %q in either run", name)
			}
			if !evidence.distrusted[name] {
				failf("no fleet.log_state → distrusted journal event for poisoned log %q in either run", name)
			}
		}
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "soakcheck: FAIL: %s\n", f)
		}
		return 1
	}
	auditNote := ""
	if audit {
		audited, pf := 0, 0
		for _, r := range []fleetRun{run1, run2} {
			for _, l := range r.Logs {
				audited += l.Stats.Audited
				pf += l.Stats.ProofFailures
			}
		}
		auditNote = fmt.Sprintf(", %d entries Merkle-audited with %d proof-failure incident(s) on the poisoned log", audited, pf)
	}
	fmt.Printf("soakcheck: PASS: fleet of %d logs, %d resumed, %d+%d unique entries, %d+%d duplicates, %d certs indexed with zero loss across the restart, breaker opened %.0f× and closed %.0f×, %d journals replayed exactly%s\n",
		len(run1.LogSizes), resumed, run1.Unique, run2.Unique, run1.Deduped, run2.Deduped, run2.Index.Certs, opened, closed, journals, auditNote)
	return 0
}

// journalSums accumulates one log's monitor.sync.end accounting.
type journalSums struct {
	fetched, deduped, quarantined, skipped, audited int
	ends                                            int
}

// incidentEvidence records which logs the journals show being
// distrusted and failing proofs, for the audit-mode assertions.
type incidentEvidence struct {
	distrusted  map[string]bool
	proofFailed map[string]bool
}

// attrInt reads a numeric journal attr (JSON numbers decode as
// float64).
func attrInt(attrs map[string]any, key string) int {
	if v, ok := attrs[key].(float64); ok {
		return int(v)
	}
	return 0
}

// reconcileJournal replays path's JSONL events and fails unless each
// log's summed sync.end accounting matches the run's stats exactly.
func reconcileJournal(journalPath, statsPath string, run fleetRun, evidence *incidentEvidence, failf func(string, ...any)) {
	f, err := os.Open(journalPath)
	if err != nil {
		failf("journal %s: %v", journalPath, err)
		return
	}
	defer f.Close()
	events, err := obs.ReadJournal(f)
	if err != nil {
		failf("journal %s: %v", journalPath, err)
		return
	}
	sums := map[string]*journalSums{}
	for _, ev := range events {
		if ev.Schema != obs.JournalSchema {
			failf("journal %s: event seq %d has schema v%d, want v%d", journalPath, ev.Seq, ev.Schema, obs.JournalSchema)
			return
		}
		switch ev.Type {
		case "monitor.proof_failure":
			if name, _ := ev.Attrs["log"].(string); name != "" {
				evidence.proofFailed[name] = true
			}
			continue
		case "fleet.log_state":
			if to, _ := ev.Attrs["to"].(string); to == "distrusted" {
				if name, _ := ev.Attrs["log"].(string); name != "" {
					evidence.distrusted[name] = true
				}
			}
			continue
		case "monitor.sync.end":
		default:
			continue
		}
		name, _ := ev.Attrs["log"].(string)
		s := sums[name]
		if s == nil {
			s = &journalSums{}
			sums[name] = s
		}
		s.ends++
		s.fetched += attrInt(ev.Attrs, "fetched")
		s.deduped += attrInt(ev.Attrs, "deduped")
		s.quarantined += attrInt(ev.Attrs, "quarantined")
		s.skipped += attrInt(ev.Attrs, "skipped")
		s.audited += attrInt(ev.Attrs, "audited")
	}
	for name, rep := range run.Logs {
		s := sums[name]
		if s == nil {
			failf("journal %s: no monitor.sync.end events for log %q", journalPath, name)
			continue
		}
		st := rep.Stats
		if s.fetched != st.Fetched || s.deduped != st.Deduped ||
			s.quarantined != st.Quarantined || s.skipped != st.SkippedEntries ||
			s.audited != st.Audited {
			failf("journal %s: %s replay (fetched %d, deduped %d, quarantined %d, skipped %d, audited %d) != %s stats (fetched %d, deduped %d, quarantined %d, skipped %d, audited %d)",
				journalPath, name, s.fetched, s.deduped, s.quarantined, s.skipped, s.audited,
				statsPath, st.Fetched, st.Deduped, st.Quarantined, st.SkippedEntries, st.Audited)
		}
	}
	for name := range sums {
		if _, ok := run.Logs[name]; !ok {
			failf("journal %s: sync.end events for unknown log %q", journalPath, name)
		}
	}
}

func sameSizes(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func loadFleet(path string) fleetRun {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soakcheck: %v\n", err)
		os.Exit(2)
	}
	var r fleetRun
	if err := json.Unmarshal(data, &r); err != nil {
		fmt.Fprintf(os.Stderr, "soakcheck: %s: %v\n", path, err)
		os.Exit(2)
	}
	return r
}
