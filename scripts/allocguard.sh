#!/bin/sh
# allocguard fails `make check` when any derived per-certificate
# allocation number in the committed benchmark record exceeds its
# budget in scripts/alloc_budgets.txt. It only reads the committed
# BENCH_7.json — it never runs benchmarks — so it is fast and
# deterministic: the contract is "whoever regenerates the record must
# keep (or consciously renegotiate) the budgets".
set -eu
RECORD=${ALLOCGUARD_RECORD:-BENCH_7.json}
BUDGETS=${ALLOCGUARD_BUDGETS:-scripts/alloc_budgets.txt}

[ -f "$RECORD" ] || { echo "allocguard: FAIL: $RECORD missing (run 'make bench' and commit the record)"; exit 1; }
[ -f "$BUDGETS" ] || { echo "allocguard: FAIL: $BUDGETS missing"; exit 1; }

python3 - "$RECORD" "$BUDGETS" <<'PYEOF'
import json, sys

record_path, budgets_path = sys.argv[1], sys.argv[2]
with open(record_path) as f:
    report = json.load(f)
by_name = {b["name"]: b for b in report.get("benchmarks", [])}

failed = checked = 0
with open(budgets_path) as f:
    for raw in f:
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        name, alloc_budget = parts[0], float(parts[1])
        byte_budget = float(parts[2]) if len(parts) > 2 else None
        b = by_name.get(name)
        if b is None:
            print(f"allocguard: FAIL: {name}: not present in {record_path}")
            failed += 1
            continue
        allocs = b.get("allocs_per_cert", 0)
        if not allocs:
            print(f"allocguard: FAIL: {name}: no allocs_per_cert in {record_path}")
            failed += 1
            continue
        checked += 1
        if allocs > alloc_budget:
            print(f"allocguard: FAIL: {name}: {allocs} allocs/cert > budget {alloc_budget}")
            failed += 1
        else:
            print(f"allocguard: OK: {name}: {allocs} allocs/cert (budget {alloc_budget})")
        if byte_budget is not None:
            bts = b.get("bytes_per_cert", 0)
            if not bts or bts > byte_budget:
                print(f"allocguard: FAIL: {name}: {bts} bytes/cert > budget {byte_budget}")
                failed += 1
            else:
                print(f"allocguard: OK: {name}: {bts} bytes/cert (budget {byte_budget})")

if checked == 0:
    print("allocguard: FAIL: no budgets checked")
    failed += 1
sys.exit(1 if failed else 0)
PYEOF
