#!/bin/sh
# soak_fleet.sh — crash/recovery soak for the multi-log fleet
# coordinator.
#
# Run 1 stands up four in-process CT logs with disjoint fault profiles
# (alpha hangs past the client timeout, bravo throws 25% 5xx, charlie
# carries poisoned entries, delta is clean), crawls them all through
# internal/fleet with per-log advisory-locked checkpoints, and is
# SIGTERMed mid-crawl; it must checkpoint every log and exit 0. Run 2
# restarts against identically rebuilt logs and must finish.
# soakcheck -fleet then asserts: every log resumed exactly where its
# checkpoint left it with zero refetch, exact per-log entry accounting
# across the kill, exact cross-log dedup counts, the fleet never
# reported stalled, and the breakers opened and re-closed.
#
# Both runs crawl with -audit and a shared -sth-store-dir: every
# claimed entry is Merkle-verified against the signed tree head, the
# verified-head anchors persist across the SIGTERM, and the clean logs
# finish both runs with audited == fetched and zero proof failures.
# The poisoned log exercises the distrust path instead of quarantine:
# the audited tree cannot be verified past charlie's first poisoned
# entry, so charlie lands distrusted (terminal, journaled,
# flight-dumped) with exactly the entries before the hole verified,
# while the fleet stays degraded-but-ready on quorum.
#
# Observability assertions ride along: both runs write a -journal and
# a -flight-dir; run 1's SIGTERM must leave a flight-recorder dump
# behind, run 2's live /metrics must expose the slo_* gauges and its
# /debug/fleet endpoint must answer in both JSON and HTML, and
# soakcheck replays both journals, reconciling the summed
# monitor.sync.end accounting against each run's -stats-json exactly.
#
# The certificate index rides both runs: each crawl persists LSM
# segments under $SOAK_DIR/index and serves the /ct/v1/query API. The
# query surface is smoked live during BOTH runs (a query mid-crawl,
# and a re-query after the SIGTERM restart), and soakcheck -fleet
# asserts zero indexed-entry loss across the restart: run 2's durable
# cert count must equal run 1's plus exactly the certificates run 2
# itself indexed.
#
# Tunables (env): SOAK_ENTRIES, SOAK_KILL_AFTER, SOAK_DIR,
# SOAK_METRICS_ADDR, SOAK_QUERY_ADDR.
set -eu

GO=${GO:-go}
SOAK_ENTRIES=${SOAK_ENTRIES:-1000}
SOAK_KILL_AFTER=${SOAK_KILL_AFTER:-3.5}
SOAK_DIR=${SOAK_DIR:-$(mktemp -d /tmp/ctsoakfleet.XXXXXX)}
SOAK_METRICS_ADDR=${SOAK_METRICS_ADDR:-127.0.0.1:19377}
SOAK_QUERY_ADDR=${SOAK_QUERY_ADDR:-127.0.0.1:19378}

echo "soak-fleet: workdir $SOAK_DIR"
$GO build -o "$SOAK_DIR/ctmonitor" ./cmd/ctmonitor
$GO build -o "$SOAK_DIR/soakcheck" ./cmd/soakcheck

# Each log front end sheds above 10 req/s (burst 2) so the crawl is
# slow enough for the SIGTERM to land mid-flight on every worker; the
# per-log breakers trip after 2 consecutive retryable failures. run
# execs the monitor so that backgrounding `run ... &` makes $! the
# ctmonitor PID itself; foreground callers wrap it in ( ... ).
run() {
    seed=$1
    out=$2
    shift 2
    exec "$SOAK_DIR/ctmonitor" \
        -logs "alpha:hang,bravo:flaky,charlie:poison,delta:clean" \
        -entries "$SOAK_ENTRIES" -batch 16 -monitor crt.sh \
        -checkpoint-dir "$SOAK_DIR/ckpt" \
        -audit -sth-store-dir "$SOAK_DIR/sth" \
        -fault-seed "$seed" \
        -timeout 300ms -max-retries 6 \
        -rate-limit 10 -rate-burst 2 \
        -breaker-threshold 2 -breaker-cooldown 200ms \
        -index-dir "$SOAK_DIR/index" -query-addr "$SOAK_QUERY_ADDR" \
        -stats-json "$@" >"$out" 2>"$out.log"
}

# probe_query polls the live query API while pid runs; exits 0 once
# the stats endpoint reports indexed certs AND a lookup answers with a
# well-formed response, non-zero if the process exits first. Runs as a
# background job so the caller can `wait` on its verdict.
probe_query() {
    pid=$1
    got_qstats=0; got_qlookup=0
    while kill -0 "$pid" 2>/dev/null; do
        if [ "$got_qstats" -eq 0 ] && curl -sf "http://$SOAK_QUERY_ADDR/ct/v1/stats" 2>/dev/null \
                | grep -q '"certs": *[1-9]'; then
            got_qstats=1
        fi
        if [ "$got_qlookup" -eq 0 ] && curl -sf "http://$SOAK_QUERY_ADDR/ct/v1/query?prefix=a" 2>/dev/null \
                | grep -q '"class": *"prefix"'; then
            got_qlookup=1
        fi
        if [ "$got_qstats" -eq 1 ] && [ "$got_qlookup" -eq 1 ]; then
            return 0
        fi
        sleep 0.1
    done
    [ "$got_qstats" -eq 1 ] && [ "$got_qlookup" -eq 1 ]
}

rm -rf "$SOAK_DIR/ckpt" "$SOAK_DIR/index" "$SOAK_DIR/sth"

echo "soak-fleet: run 1 (SIGTERM after ${SOAK_KILL_AFTER}s, query smoke mid-crawl)"
run 7 "$SOAK_DIR/run1.json" \
    -journal "$SOAK_DIR/run1.jsonl" -flight-dir "$SOAK_DIR/flight1" &
pid=$!
probe_query "$pid" &
probe1=$!
sleep "$SOAK_KILL_AFTER"
if ! kill -TERM "$pid" 2>/dev/null; then
    echo "soak-fleet: FAIL: run 1 exited before the SIGTERM landed; raise SOAK_ENTRIES or lower SOAK_KILL_AFTER" >&2
    exit 1
fi
wait "$pid" || {
    echo "soak-fleet: FAIL: run 1 exited non-zero after SIGTERM (see $SOAK_DIR/run1.json.log)" >&2
    exit 1
}
wait "$probe1" || {
    echo "soak-fleet: FAIL: query API never answered (stats with certs + prefix lookup) during run 1's crawl" >&2
    exit 1
}

# The interrupted run must have captured its final moments: the
# SIGTERM path triggers a degraded-exit flight dump.
if ! ls "$SOAK_DIR"/flight1/flight-*.jsonl >/dev/null 2>&1; then
    echo "soak-fleet: FAIL: run 1 left no flight-recorder dump in $SOAK_DIR/flight1 after the SIGTERM" >&2
    exit 1
fi

echo "soak-fleet: run 2 (resume all logs from checkpoints, probe live endpoints)"
run 8 "$SOAK_DIR/run2.json" \
    -journal "$SOAK_DIR/run2.jsonl" -flight-dir "$SOAK_DIR/flight2" \
    -metrics-addr "$SOAK_METRICS_ADDR" &
pid=$!

# While run 2 crawls, assert the live observability surface: the slo_*
# gauges on /metrics, /debug/fleet in both representations, and the
# re-query smoke — the restarted index must serve run 1's persisted
# certificates (stats reports certs before the resumed crawl adds any)
# and answer lookups again.
got_slo=0; got_json=0; got_html=0; got_requery=0
while kill -0 "$pid" 2>/dev/null; do
    if [ "$got_slo" -eq 0 ] && curl -sf "http://$SOAK_METRICS_ADDR/metrics" 2>/dev/null \
            | grep -q '^slo_state{'; then
        got_slo=1
    fi
    if [ "$got_json" -eq 0 ] && curl -sf "http://$SOAK_METRICS_ADDR/debug/fleet" 2>/dev/null \
            | grep -q '"fleet_state"'; then
        got_json=1
    fi
    if [ "$got_html" -eq 0 ] && curl -sf "http://$SOAK_METRICS_ADDR/debug/fleet?format=html" 2>/dev/null \
            | grep -q '<table>'; then
        got_html=1
    fi
    if [ "$got_requery" -eq 0 ] && curl -sf "http://$SOAK_QUERY_ADDR/ct/v1/stats" 2>/dev/null \
            | grep -q '"certs": *[1-9]' \
            && curl -sf "http://$SOAK_QUERY_ADDR/ct/v1/query?prefix=a" 2>/dev/null \
            | grep -q '"class": *"prefix"'; then
        got_requery=1
    fi
    if [ "$got_slo" -eq 1 ] && [ "$got_json" -eq 1 ] && [ "$got_html" -eq 1 ] && [ "$got_requery" -eq 1 ]; then
        break
    fi
    sleep 0.1
done
wait "$pid" || {
    echo "soak-fleet: FAIL: run 2 exited non-zero (see $SOAK_DIR/run2.json.log)" >&2
    exit 1
}
[ "$got_slo" -eq 1 ] || { echo "soak-fleet: FAIL: no slo_state gauge ever appeared on /metrics" >&2; exit 1; }
[ "$got_json" -eq 1 ] || { echo "soak-fleet: FAIL: /debug/fleet never served the JSON report" >&2; exit 1; }
[ "$got_html" -eq 1 ] || { echo "soak-fleet: FAIL: /debug/fleet?format=html never served the HTML report" >&2; exit 1; }
[ "$got_requery" -eq 1 ] || { echo "soak-fleet: FAIL: the restarted query API never served the persisted index" >&2; exit 1; }

# The distrust incident must leave forensics behind: charlie's proof
# failure (whichever run first reached the poisoned hole) triggers a
# proof-failure flight dump, and the verified-head anchors must exist
# for the logs that crawled under audit.
if ! ls "$SOAK_DIR"/flight1/flight-*.jsonl "$SOAK_DIR"/flight2/flight-*.jsonl >/dev/null 2>&1; then
    echo "soak-fleet: FAIL: no flight-recorder dump from either audited run" >&2
    exit 1
fi
if ! ls "$SOAK_DIR"/sth/*.sth >/dev/null 2>&1; then
    echo "soak-fleet: FAIL: no verified-STH anchors persisted in $SOAK_DIR/sth" >&2
    exit 1
fi

"$SOAK_DIR/soakcheck" -fleet \
    -journal1 "$SOAK_DIR/run1.jsonl" -journal2 "$SOAK_DIR/run2.jsonl" \
    "$SOAK_DIR/run1.json" "$SOAK_DIR/run2.json"
echo "soak-fleet: OK (artifacts in $SOAK_DIR)"
