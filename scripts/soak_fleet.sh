#!/bin/sh
# soak_fleet.sh — crash/recovery soak for the multi-log fleet
# coordinator.
#
# Run 1 stands up four in-process CT logs with disjoint fault profiles
# (alpha hangs past the client timeout, bravo throws 25% 5xx, charlie
# carries poisoned entries, delta is clean), crawls them all through
# internal/fleet with per-log advisory-locked checkpoints, and is
# SIGTERMed mid-crawl; it must checkpoint every log and exit 0. Run 2
# restarts against identically rebuilt logs and must finish.
# soakcheck -fleet then asserts: every log resumed exactly where its
# checkpoint left it with zero refetch, exact per-log entry accounting
# across the kill, exact cross-log dedup counts, the poisoned log
# quarantined exactly its poisoned indices without stalling, the fleet
# never reported stalled, and the breakers opened and re-closed.
#
# Tunables (env): SOAK_ENTRIES, SOAK_KILL_AFTER, SOAK_DIR.
set -eu

GO=${GO:-go}
SOAK_ENTRIES=${SOAK_ENTRIES:-1000}
SOAK_KILL_AFTER=${SOAK_KILL_AFTER:-3.5}
SOAK_DIR=${SOAK_DIR:-$(mktemp -d /tmp/ctsoakfleet.XXXXXX)}

echo "soak-fleet: workdir $SOAK_DIR"
$GO build -o "$SOAK_DIR/ctmonitor" ./cmd/ctmonitor
$GO build -o "$SOAK_DIR/soakcheck" ./cmd/soakcheck

# Each log front end sheds above 10 req/s (burst 2) so the crawl is
# slow enough for the SIGTERM to land mid-flight on every worker; the
# per-log breakers trip after 2 consecutive retryable failures. run
# execs the monitor so that backgrounding `run ... &` makes $! the
# ctmonitor PID itself; foreground callers wrap it in ( ... ).
run() {
    seed=$1
    out=$2
    shift 2
    exec "$SOAK_DIR/ctmonitor" \
        -logs "alpha:hang,bravo:flaky,charlie:poison,delta:clean" \
        -entries "$SOAK_ENTRIES" -batch 16 -monitor crt.sh \
        -checkpoint-dir "$SOAK_DIR/ckpt" \
        -fault-seed "$seed" \
        -timeout 300ms -max-retries 6 \
        -rate-limit 10 -rate-burst 2 \
        -breaker-threshold 2 -breaker-cooldown 200ms \
        -stats-json "$@" >"$out" 2>"$out.log"
}

rm -rf "$SOAK_DIR/ckpt"

echo "soak-fleet: run 1 (SIGTERM after ${SOAK_KILL_AFTER}s)"
run 7 "$SOAK_DIR/run1.json" &
pid=$!
sleep "$SOAK_KILL_AFTER"
if ! kill -TERM "$pid" 2>/dev/null; then
    echo "soak-fleet: FAIL: run 1 exited before the SIGTERM landed; raise SOAK_ENTRIES or lower SOAK_KILL_AFTER" >&2
    exit 1
fi
wait "$pid" || {
    echo "soak-fleet: FAIL: run 1 exited non-zero after SIGTERM (see $SOAK_DIR/run1.json.log)" >&2
    exit 1
}

echo "soak-fleet: run 2 (resume all logs from checkpoints)"
( run 8 "$SOAK_DIR/run2.json" )

"$SOAK_DIR/soakcheck" -fleet "$SOAK_DIR/run1.json" "$SOAK_DIR/run2.json"
echo "soak-fleet: OK (artifacts in $SOAK_DIR)"
