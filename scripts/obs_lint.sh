#!/bin/sh
# obs_lint.sh — bidirectional drift check between the metrics the code
# registers and the metrics reference table in DESIGN.md.
#
# Code side: every statically-named instrument registration
# (.Counter/.Gauge/.GaugeFunc/.Histogram/.Help("name") in non-test Go
# under internal/ and cmd/), plus the DYNAMIC list below for families
# whose names are built at runtime (the pipeline Feed suffixes its
# instance name). Docs side: the `name` column of the table between
# the `<!-- metrics:begin -->` / `<!-- metrics:end -->` markers in
# DESIGN.md.
#
# Fails `make check` when either side has a name the other lacks — an
# undocumented metric or a stale doc row both count as drift.
set -eu

cd "$(dirname "$0")/.."

DESIGN=DESIGN.md
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Families the regex can't see because their names are concatenated at
# runtime: internal/fleet builds its feed as NewFeed(..., "fleet_feed",
# ...), and Feed registers these four suffixes.
cat > "$tmp/dynamic" <<'EOF'
fleet_feed_depth
fleet_feed_put_total
fleet_feed_get_total
fleet_feed_put_stalls_total
EOF

{
    grep -rnoE '\.(Counter|Gauge|GaugeFunc|Histogram|Help)\("[a-z0-9_]+"' \
        --include='*.go' internal/ cmd/ \
        | grep -v '_test\.go' \
        | sed -E 's/.*\("([a-z0-9_]+)"$/\1/'
    cat "$tmp/dynamic"
} | sort -u > "$tmp/code"

awk '/<!-- metrics:begin -->/{t=1; next}
     /<!-- metrics:end -->/{t=0}
     t && /^\| `/ { name=$2; gsub(/`/, "", name); print name }' \
    "$DESIGN" | sort -u > "$tmp/docs"

if ! [ -s "$tmp/docs" ]; then
    echo "obs-lint: FAIL: no metrics table found between <!-- metrics:begin --> and <!-- metrics:end --> in $DESIGN" >&2
    exit 1
fi

status=0
if ! comm -23 "$tmp/code" "$tmp/docs" > "$tmp/undocumented" || [ -s "$tmp/undocumented" ]; then
    if [ -s "$tmp/undocumented" ]; then
        echo "obs-lint: FAIL: metrics registered in code but missing from the $DESIGN table:" >&2
        sed 's/^/  /' "$tmp/undocumented" >&2
        status=1
    fi
fi
if ! comm -13 "$tmp/code" "$tmp/docs" > "$tmp/stale" || [ -s "$tmp/stale" ]; then
    if [ -s "$tmp/stale" ]; then
        echo "obs-lint: FAIL: metrics documented in $DESIGN but never registered in code:" >&2
        sed 's/^/  /' "$tmp/stale" >&2
        status=1
    fi
fi

if [ $status -eq 0 ]; then
    n=$(grep -c . "$tmp/code")
    echo "obs-lint: OK ($n metric families, code and $DESIGN agree)"
fi
exit $status
