#!/bin/sh
# profile captures CPU and heap pprof profiles from a live paper-scale
# measurement: it boots ctscan with its metrics listener (which bundles
# net/http/pprof via internal/obs) and scrapes /debug/pprof while the
# generate->lint pipeline runs. Profiles land in profiles/ — see
# profiles/README.md for how to read them (alloc_space lives inside
# the heap profile; select it with -sample_index=alloc_space).
set -eu
ADDR=${PROFILE_ADDR:-127.0.0.1:19421}
SIZE=${PROFILE_SIZE:-348000}
CPU_SECONDS=${PROFILE_CPU_SECONDS:-10}
OUT=${PROFILE_DIR:-profiles}

mkdir -p "$OUT"
go build -o /tmp/ctscan-profile ./cmd/ctscan

/tmp/ctscan-profile -size "$SIZE" -metrics-addr "$ADDR" \
    >/dev/null 2>"$OUT/ctscan.log" &
pid=$!
trap 'kill $pid 2>/dev/null || true' EXIT

ok=0
for i in $(seq 1 100); do
    if curl -sf "http://$ADDR/debug/pprof/" -o /dev/null 2>/dev/null; then
        ok=1; break
    fi
    sleep 0.1
done
[ $ok -eq 1 ] || { echo "profile: FAIL: pprof endpoint never came up (see $OUT/ctscan.log)"; exit 1; }

echo "profile: capturing ${CPU_SECONDS}s CPU profile from a ${SIZE}-cert run..."
curl -sf "http://$ADDR/debug/pprof/profile?seconds=$CPU_SECONDS" -o "$OUT/cpu.pprof" \
    || { echo "profile: FAIL: CPU capture (did the run finish early? raise PROFILE_SIZE)"; exit 1; }
echo "profile: capturing heap profile (includes alloc_space)..."
curl -sf "http://$ADDR/debug/pprof/heap" -o "$OUT/heap.pprof" \
    || { echo "profile: FAIL: heap capture"; exit 1; }

kill $pid 2>/dev/null || true
wait $pid 2>/dev/null || true

echo
echo "profile: top CPU consumers:"
go tool pprof -top -nodecount 12 /tmp/ctscan-profile "$OUT/cpu.pprof" | sed -n '1,20p'
echo
echo "profile: top allocators (alloc_space):"
go tool pprof -top -nodecount 12 -sample_index=alloc_space /tmp/ctscan-profile "$OUT/heap.pprof" | sed -n '1,20p'
echo
echo "profile: wrote $OUT/cpu.pprof and $OUT/heap.pprof"
echo "profile: explore with: go tool pprof -http=: $OUT/cpu.pprof"
