#!/bin/sh
# soak.sh — crash/recovery soak for the hardened serving path.
#
# Run 1 crawls a rate-limited CT log through a fault injector (hang,
# reset, 25% 5xx) and is SIGTERMed mid-crawl; it must checkpoint and
# exit 0. Run 2 restarts with the same -checkpoint-file against an
# identically rebuilt log and must finish. soakcheck then asserts:
# resumed from a non-zero checkpoint with no refetch, exact entry
# accounting across the kill, non-zero ctlog_server_shed_total, and a
# breaker that opened and re-closed.
#
# Tunables (env): SOAK_ENTRIES, SOAK_KILL_AFTER, SOAK_DIR.
set -eu

GO=${GO:-go}
SOAK_ENTRIES=${SOAK_ENTRIES:-1000}
SOAK_KILL_AFTER=${SOAK_KILL_AFTER:-5}
SOAK_DIR=${SOAK_DIR:-$(mktemp -d /tmp/ctsoak.XXXXXX)}

echo "soak: workdir $SOAK_DIR"
$GO build -o "$SOAK_DIR/ctmonitor" ./cmd/ctmonitor
$GO build -o "$SOAK_DIR/soakcheck" ./cmd/soakcheck

# The knobs below are deliberately hostile: the log sheds above
# 10 req/s (burst 2), a quarter of requests fault (hang stalls past the
# 300ms client timeout, reset tears bodies mid-read, the rest are 5xx),
# and the breaker trips after 2 consecutive retryable failures.
# run execs the monitor so that backgrounding `run ... &` makes $!
# the ctmonitor PID itself (not a wrapping subshell that would swallow
# the SIGTERM); foreground callers wrap it in ( ... ).
run() {
    seed=$1
    out=$2
    shift 2
    exec "$SOAK_DIR/ctmonitor" \
        -entries "$SOAK_ENTRIES" -batch 16 -monitor crt.sh \
        -checkpoint-file "$SOAK_DIR/ckpt" \
        -fault-rate 0.25 -fault-kinds hang,reset,server-error -fault-seed "$seed" \
        -timeout 300ms -max-retries 6 \
        -rate-limit 10 -rate-burst 2 \
        -breaker-threshold 2 -breaker-cooldown 200ms \
        -supervise -stats-json "$@" >"$out" 2>"$out.log"
}

rm -f "$SOAK_DIR"/ckpt.*

echo "soak: run 1 (SIGTERM after ${SOAK_KILL_AFTER}s)"
run 7 "$SOAK_DIR/run1.json" &
pid=$!
sleep "$SOAK_KILL_AFTER"
if ! kill -TERM "$pid" 2>/dev/null; then
    echo "soak: FAIL: run 1 exited before the SIGTERM landed; raise SOAK_ENTRIES or lower SOAK_KILL_AFTER" >&2
    exit 1
fi
wait "$pid" || {
    echo "soak: FAIL: run 1 exited non-zero after SIGTERM (see $SOAK_DIR/run1.json.log)" >&2
    exit 1
}

echo "soak: run 2 (resume from checkpoint)"
( run 8 "$SOAK_DIR/run2.json" )

"$SOAK_DIR/soakcheck" "$SOAK_DIR/run1.json" "$SOAK_DIR/run2.json"
echo "soak: OK (artifacts in $SOAK_DIR)"
