// Package repro is a from-scratch Go reproduction of "Analyzing
// Compliance and Complications of Integrating Internationalized X.509
// Certificates" (IMC 2025). The implementation lives under internal/
// (see DESIGN.md for the system inventory); the benchmark harness in
// bench_test.go regenerates every table and figure of the paper's
// evaluation.
package repro
